let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = ':'

let sanitize_name name =
  if name = "" then "_"
  else begin
    let b = Bytes.of_string name in
    Bytes.iteri (fun i c -> if not (is_name_char c) then Bytes.set b i '_') b;
    let s = Bytes.to_string b in
    match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s
  end

let escape_label_value s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let labels_text labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
           labels)
    ^ "}"

(* Same, with extra label pairs appended (histogram "le"). *)
let labels_text_with labels extra = labels_text (labels @ extra)

let type_of = function
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

let render t =
  let samples = Metrics.snapshot t in
  let buf = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = sanitize_name s.Metrics.name in
      (* One HELP/TYPE block per family; samples arrive sorted by name. *)
      if !last_header <> name then begin
        last_header := name;
        if s.Metrics.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help s.Metrics.help));
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name (type_of s.Metrics.value))
      end;
      match s.Metrics.value with
      | Metrics.Counter v ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" name (labels_text s.Metrics.labels) v)
      | Metrics.Gauge v ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (labels_text s.Metrics.labels) (number v))
      | Metrics.Histogram h ->
        List.iter
          (fun (bound, cum) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (labels_text_with s.Metrics.labels [ ("le", number bound) ])
                 cum))
          h.Metrics.buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" name
             (labels_text_with s.Metrics.labels [ ("le", "+Inf") ])
             h.Metrics.total);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (labels_text s.Metrics.labels)
             (number h.Metrics.sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (labels_text s.Metrics.labels)
             h.Metrics.total))
    samples;
  Buffer.contents buf
