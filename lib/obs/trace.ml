module Clock = Spp_util.Clock
module Prng = Spp_util.Prng

type span = {
  s_name : string;
  s_start_ms : float;  (* relative to the trace epoch *)
  mutable s_dur_ms : float option;
  mutable s_fields : (string * Field.t) list;
  mutable s_children : span list;  (* newest first *)
}

type t = {
  trace_id : string;
  epoch_ms : float;
  s_root : span;
  lock : Mutex.t;
}

(* ------------------------------------------------------------------ *)
(* Trace-id generation: one process-wide PRNG, seeded from wall clock
   and pid so concurrent daemons do not collide. *)

let id_rng =
  lazy
    (let seed =
       (int_of_float (Unix.gettimeofday () *. 1e6) lxor (Unix.getpid () lsl 20)) land max_int
     in
     (Mutex.create (), Prng.create seed))

let gen_id () =
  let lock, rng = Lazy.force id_rng in
  Mutex.lock lock;
  let bits = Prng.bits64 rng in
  Mutex.unlock lock;
  Printf.sprintf "%016Lx" bits

(* ------------------------------------------------------------------ *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?id ~name () =
  let trace_id = match id with Some i when i <> "" -> i | _ -> gen_id () in
  { trace_id;
    epoch_ms = Clock.now_ms ();
    s_root = { s_name = name; s_start_ms = 0.0; s_dur_ms = None; s_fields = []; s_children = [] };
    lock = Mutex.create () }

let id t = t.trace_id
let root t = t.s_root

let span t ~parent name =
  let start = Clock.elapsed_ms t.epoch_ms in
  let s =
    { s_name = name; s_start_ms = start; s_dur_ms = None; s_fields = []; s_children = [] }
  in
  locked t (fun () -> parent.s_children <- s :: parent.s_children);
  s

let finish ?(fields = []) t s =
  let now = Clock.elapsed_ms t.epoch_ms in
  locked t (fun () ->
      (match s.s_dur_ms with
       | None -> s.s_dur_ms <- Some (Float.max 0.0 (now -. s.s_start_ms))
       | Some _ -> ());
      if fields <> [] then s.s_fields <- s.s_fields @ fields)

let with_span t ~parent name f =
  let s = span t ~parent name in
  match f s with
  | v ->
    finish t s;
    v
  | exception e ->
    finish ~fields:[ ("outcome", Field.String "raised") ] t s;
    raise e

let add_fields t s fields = locked t (fun () -> s.s_fields <- s.s_fields @ fields)
let start_ms s = s.s_start_ms

(* ------------------------------------------------------------------ *)
(* Grafting: adopt a span tree recorded by another process (the
   backend's reply-embedded trace) under one of our spans. Imported
   offsets are relative to the *remote* trace's epoch; [offset_ms]
   rebases them onto this trace's timeline — callers pass the start of
   the span that covers the remote call, so the foreign tree nests
   inside it chronologically even though the two clocks never met. *)

type imported = {
  i_name : string;
  i_start_ms : float;
  i_dur_ms : float option;
  i_fields : (string * Field.t) list;
  i_children : imported list;  (* chronological *)
}

let graft t ~parent ~offset_ms imp =
  let rec build i =
    { s_name = i.i_name;
      s_start_ms = offset_ms +. i.i_start_ms;
      s_dur_ms = i.i_dur_ms;
      s_fields = i.i_fields;
      (* children are stored newest-first *)
      s_children = List.rev_map build i.i_children }
  in
  let s = build imp in
  locked t (fun () -> parent.s_children <- s :: parent.s_children)

let close ?fields t = finish ?fields t t.s_root

let total_ms t =
  match t.s_root.s_dur_ms with
  | Some d -> d
  | None -> Clock.elapsed_ms t.epoch_ms

(* ------------------------------------------------------------------ *)
(* Serialisation. Children are stored newest-first; emit chronological. *)

let to_json t =
  let buf = Buffer.create 512 in
  let rec emit s =
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"start_ms\":%s" (Field.escape s.s_name)
         (Field.to_json (Field.Float s.s_start_ms)));
    (match s.s_dur_ms with
     | Some d -> Buffer.add_string buf (Printf.sprintf ",\"ms\":%s" (Field.to_json (Field.Float d)))
     | None -> ());
    (match s.s_fields with
     | [] -> ()
     | fields ->
       Buffer.add_string buf ",\"fields\":{";
       List.iteri
         (fun i (k, v) ->
           if i > 0 then Buffer.add_char buf ',';
           Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (Field.escape k) (Field.to_json v)))
         fields;
       Buffer.add_char buf '}');
    (match List.rev s.s_children with
     | [] -> ()
     | children ->
       Buffer.add_string buf ",\"spans\":[";
       List.iteri
         (fun i c ->
           if i > 0 then Buffer.add_char buf ',';
           emit c)
         children;
       Buffer.add_char buf ']');
    Buffer.add_char buf '}'
  in
  locked t (fun () ->
      Buffer.add_string buf (Printf.sprintf "{\"trace_id\":\"%s\",\"root\":" (Field.escape t.trace_id));
      emit t.s_root;
      Buffer.add_char buf '}');
  Buffer.contents buf

let render t =
  let buf = Buffer.create 512 in
  let field_text (k, v) =
    Printf.sprintf "%s=%s"
      k
      (match v with
       | Field.String s -> s
       | Field.Int i -> string_of_int i
       | Field.Float f -> Printf.sprintf "%.6g" f
       | Field.Bool b -> string_of_bool b)
  in
  let rec emit prefix is_last s =
    let dur =
      match s.s_dur_ms with Some d -> Printf.sprintf "%.2fms" d | None -> "(open)"
    in
    let fields =
      match s.s_fields with
      | [] -> ""
      | fs -> "  [" ^ String.concat " " (List.map field_text fs) ^ "]"
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s %-24s %8s @%.2fms%s\n" prefix
         (if prefix = "" then "" else if is_last then "`- " else "|- ")
         s.s_name dur s.s_start_ms fields);
    let children = List.rev s.s_children in
    let n = List.length children in
    List.iteri
      (fun i c ->
        let child_prefix =
          if prefix = "" then "  " else prefix ^ (if is_last then "   " else "|  ")
        in
        emit child_prefix (i = n - 1) c)
      children
  in
  locked t (fun () ->
      Buffer.add_string buf (Printf.sprintf "trace %s  total %.2fms\n" t.trace_id (total_ms t));
      emit "" true t.s_root);
  Buffer.contents buf
