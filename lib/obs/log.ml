type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type state = {
  mutable lvl : level;
  mutable chan : out_channel;
  mutable owns_chan : bool;  (* close on replacement (log files, not stderr) *)
  lock : Mutex.t;
}

let state = { lvl = Info; chan = stderr; owns_chan = false; lock = Mutex.create () }

let locked f =
  Mutex.lock state.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.lock) f

let set_level lvl = locked (fun () -> state.lvl <- lvl)
let level () = locked (fun () -> state.lvl)

let replace_chan chan owns =
  locked (fun () ->
      if state.owns_chan then (try close_out state.chan with Sys_error _ -> ());
      state.chan <- chan;
      state.owns_chan <- owns)

let set_channel chan = replace_chan chan false

let set_file path = replace_chan (open_out_gen [ Open_append; Open_creat ] 0o644 path) true

let init_from_env () =
  match Sys.getenv_opt "SPP_LOG" with
  | None -> ()
  | Some s -> (
    match level_of_string s with
    | Some lvl -> set_level lvl
    | None ->
      if String.trim s <> "" then
        Printf.eprintf "warning: ignoring SPP_LOG=%S (want debug|info|warn|error)\n%!" s)

let enabled lvl = severity lvl >= severity state.lvl

let emit lvl msg fields =
  if enabled lvl then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "{\"ts\":%.3f,\"level\":\"%s\",\"msg\":\"%s\"" (Unix.gettimeofday ())
         (level_to_string lvl) (Field.escape msg));
    Field.add_fields buf fields;
    Buffer.add_string buf "}\n";
    let line = Buffer.contents buf in
    locked (fun () ->
        try
          output_string state.chan line;
          flush state.chan
        with Sys_error _ -> ())
  end

let debug msg fields = emit Debug msg fields
let info msg fields = emit Info msg fields
let warn msg fields = emit Warn msg fields
let error msg fields = emit Error msg fields
