(** Process runtime telemetry: a sampler thread publishing GC and CPU
    gauges into a metrics registry.

    Every [spp serve] and [spp proxy] process runs one sampler. Each
    tick reads [Gc.quick_stat] and [Unix.times] and publishes:

    - [spp_gc_heap_words] — major heap size in words (gauge)
    - [spp_gc_minor_collections_total] / [spp_gc_major_collections_total]
      — collection counts since start (counters)
    - [spp_gc_promoted_words_total] / [spp_gc_minor_words_total] —
      words promoted / allocated on the minor heap (counters)
    - [spp_process_cpu_seconds] — cumulative process CPU time, user +
      system, all domains and threads (gauge)
    - [spp_cpu_utilization] — CPU seconds burned per wall second over
      the last sampling interval, i.e. average busy cores; > 1 while a
      race fans out across domains (gauge)

    [start] takes one sample synchronously before returning, so gauges
    are present on a scrape immediately. *)

type t

(** [start registry] samples once, then every [interval_ms]
    (default 1000) on a daemon thread until {!stop}. *)
val start : ?interval_ms:float -> Metrics.t -> t

(** Stops and joins the sampler thread. Idempotent. *)
val stop : t -> unit
