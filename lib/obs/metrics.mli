(** Domain-safe metrics registry: named counters, gauges, and
    log-bucketed histograms, with optional Prometheus-style labels.

    Hot-path cost is one atomic increment: registration (under the
    registry mutex) hands back a handle whose cells are sharded across a
    small power-of-two pool indexed by the calling domain's id, so racing
    domains rarely contend on a cache line; shards are merged at
    {!snapshot} time. Gauges are a single atomic cell (set semantics do
    not shard); callback metrics ({!counter_fn}, {!gauge_fn}) are sampled
    lazily at snapshot time and suit values another subsystem already
    maintains (queue depth, LRU occupancy, uptime).

    A registry created with [~enabled:false] hands out no-op handles and
    records nothing — snapshots and scrapes are empty — which is the
    instrumentation-overhead baseline for bench E15. *)

type t

(** [create ()] builds a registry. [shards] (default 16) is rounded up to
    a power of two. [~enabled:false] makes every handle a no-op. *)
val create : ?enabled:bool -> ?shards:int -> unit -> t

val enabled : t -> bool

(** {1 Counters} *)

type counter

(** [counter t name] registers (or finds) a monotone counter. Same
    [name]+[labels] always returns a handle to the same cells.
    @raise Invalid_argument if [name]+[labels] is registered as a
    different metric kind. *)
val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** [counter_fn t name f] registers a counter whose value is [f ()] at
    snapshot time. Re-registration replaces the closure. *)
val counter_fn : t -> ?help:string -> ?labels:(string * string) list -> string -> (unit -> int) -> unit

(** {1 Gauges} *)

type gauge

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val gauge_set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_fn : t -> ?help:string -> ?labels:(string * string) list -> string -> (unit -> float) -> unit

(** {1 Histograms} *)

type histogram

(** Upper bucket bounds for latencies in milliseconds: 50 µs to 10 s in
    a 1 / 2.5 / 5 logarithmic ladder. *)
val default_latency_buckets : float array

(** Byte-size bounds: 64 B to 4 MiB, powers of four. *)
val default_size_buckets : float array

(** [histogram t name] registers a histogram with the given upper bucket
    bounds (default {!default_latency_buckets}; must be strictly
    increasing and finite — an implicit [+Inf] overflow bucket is always
    appended). Observations use Prometheus [le] semantics: a value lands
    in the first bucket whose bound is [>=] it.
    @raise Invalid_argument on bad bounds, a kind clash, or
    re-registration with different explicit bounds. *)
val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?buckets:float array -> string ->
  histogram

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  buckets : (float * int) list;  (** (finite upper bound, cumulative count) *)
  total : int;  (** all observations, including the overflow bucket *)
  sum : float;
}

(** [hist_quantile s q] estimates the [q]-quantile ([0..1]) by linear
    interpolation inside the bucket holding that rank; ranks falling in
    the overflow bucket report the largest finite bound; [0.] on an empty
    histogram. *)
val hist_quantile : hist_snapshot -> float -> float

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by label name *)
  help : string;
  value : value;
}

(** All registered metrics, shards merged, sorted by name then labels.
    Takes the registry mutex only to list entries — cell reads are
    lock-free, so scraping never stalls the hot path. *)
val snapshot : t -> sample list

(** Counter samples as [("name{k=\"v\"}", value)] pairs, sorted — the
    shape the wire protocol's [metrics] reply carries. *)
val counters : t -> (string * int) list

val find_counter : t -> ?labels:(string * string) list -> string -> int option
val find_histogram : t -> ?labels:(string * string) list -> string -> hist_snapshot option

(** Every labelling of counter [name]: [(labels, value)] list. *)
val labeled_counters : t -> string -> ((string * string) list * int) list
