type 'a result =
  | Optimal of { objective : 'a; solution : 'a array; duals : 'a array }
  | Infeasible
  | Unbounded

module Make (F : Field.S) = struct
  (* Dense tableau:
       rows    : m arrays of length [cols+1]; slot [cols] is the rhs.
       basis   : basis.(i) is the variable basic in row i.
       objrow  : reduced costs, slot [cols] holds -z.
     Column layout: [0,n) model vars, [n, art_start) slack/surplus,
     [art_start, cols) artificials — and, for a warm-started restricted
     master, appended columns at [orig_cols, cols). *)

  type tableau = {
    mutable rows : F.t array array;
    mutable basis : int array;
    mutable objrow : F.t array;
    mutable cols : int;
    art_start : int;
    nvars : int;
  }

  let pivot t r c =
    let prow = t.rows.(r) in
    let pv = prow.(c) in
    for j = 0 to t.cols do
      prow.(j) <- F.div prow.(j) pv
    done;
    let eliminate row =
      let factor = row.(c) in
      if not (F.is_zero factor) then
        for j = 0 to t.cols do
          row.(j) <- F.sub row.(j) (F.mul factor prow.(j))
        done
    in
    Array.iteri (fun i row -> if i <> r then eliminate row) t.rows;
    eliminate t.objrow;
    t.basis.(r) <- c

  (* Pricing. Dantzig's rule (most negative reduced cost) is fast but can
     cycle on degenerate bases; Bland's rule (smallest eligible index)
     terminates always. We run Dantzig while progress is made and fall back
     to Bland permanently after a run of degenerate pivots — a standard,
     still-terminating hybrid. Leaving row: min ratio, ties by smallest
     basis index (part of Bland's argument). [enter_ok] restricts the
     entering candidates (phase 2 bars artificials; a restricted master
     additionally admits its appended columns). *)
  let degenerate_limit = 40

  let iterate t ~enter_ok ~max_iters =
    let iters = ref 0 in
    let degenerate_run = ref 0 in
    let rec step () =
      incr iters;
      if !iters > max_iters then failwith "Simplex: iteration limit exceeded";
      let entering = ref (-1) in
      if !degenerate_run < degenerate_limit then begin
        (* Dantzig: most negative reduced cost. *)
        let best = ref F.zero in
        for j = 0 to t.cols - 1 do
          if enter_ok j && F.compare t.objrow.(j) !best < 0 then begin
            best := t.objrow.(j);
            entering := j
          end
        done
      end
      else begin
        let j = ref 0 in
        while !entering < 0 && !j < t.cols do
          if enter_ok !j && F.compare t.objrow.(!j) F.zero < 0 then entering := !j;
          incr j
        done
      end;
      if !entering < 0 then `Optimal
      else begin
        let e = !entering in
        let leave = ref (-1) in
        let best_ratio = ref F.zero in
        Array.iteri
          (fun i row ->
            if F.compare row.(e) F.zero > 0 then begin
              let ratio = F.div row.(t.cols) row.(e) in
              if
                !leave < 0
                || F.compare ratio !best_ratio < 0
                || (F.compare ratio !best_ratio = 0 && t.basis.(i) < t.basis.(!leave))
              then begin
                leave := i;
                best_ratio := ratio
              end
            end)
          t.rows;
        if !leave < 0 then `Unbounded
        else begin
          if F.is_zero !best_ratio then incr degenerate_run else degenerate_run := 0;
          pivot t !leave e;
          step ()
        end
      end
    in
    (* Ambient profiling: one aggregate report per solve, on every exit
       path (including the iteration-limit failure), never per pivot. *)
    let report () = Spp_obs.Profile.add_pivots !iters in
    match step () with
    | r ->
      report ();
      r
    | exception e ->
      report ();
      raise e

  (* Reduced-cost row for cost vector [cost] (length cols) under the current
     basis: r_j = c_j - sum_i c_{basis i} T[i][j];   slot cols = -z. *)
  let set_objective_row t cost =
    for j = 0 to t.cols do
      t.objrow.(j) <- (if j < t.cols then cost.(j) else F.zero)
    done;
    Array.iteri
      (fun i row ->
        let cb = cost.(t.basis.(i)) in
        if not (F.is_zero cb) then
          for j = 0 to t.cols do
            t.objrow.(j) <- F.sub t.objrow.(j) (F.mul cb row.(j))
          done)
      t.rows

  (* Everything phase 2 (and a warm-started master) needs to keep going
     after phase 1: the tableau plus the dual-recovery bookkeeping. *)
  type prepared = {
    tab : tableau;
    m : int;  (* original constraint count, including dropped rows *)
    dual_col : int array;
    dual_sign : int array;
    dropped : (int, unit) Hashtbl.t;
  }

  (* Build the tableau from [model] and run phase 1 (when artificials are
     needed), driving artificials out of the basis and dropping redundant
     rows. Returns a feasible prepared tableau or [`Infeasible]. *)
  let prepare model ~max_iters =
    let n = Model.num_vars model in
    let constrs = Array.of_list (Model.constraints model) in
    let m = Array.length constrs in
    (* Normalise every row to rhs >= 0 and count auxiliary columns. *)
    let slack_count = ref 0 and art_count = ref 0 in
    let norm =
      Array.map
        (fun (_, terms, op, rhs) ->
          let flip = Spp_num.Rat.sign rhs < 0 in
          let terms = if flip then List.map (fun (v, c) -> (v, Spp_num.Rat.neg c)) terms else terms in
          let rhs = if flip then Spp_num.Rat.neg rhs else rhs in
          let op = match (op, flip) with
            | Model.Eq, _ -> Model.Eq
            | Model.Le, false | Model.Ge, true -> Model.Le
            | Model.Ge, false | Model.Le, true -> Model.Ge
          in
          (match op with
           | Model.Le -> incr slack_count
           | Model.Ge -> incr slack_count; incr art_count
           | Model.Eq -> incr art_count);
          (terms, op, rhs, flip))
        constrs
    in
    let art_start = n + !slack_count in
    let cols = art_start + !art_count in
    let rows = Array.init m (fun _ -> Array.make (cols + 1) F.zero) in
    let basis = Array.make m 0 in
    let next_slack = ref n and next_art = ref art_start in
    (* For dual recovery: a column whose original entries were +e_i (the
       slack for Le, the artificial for Ge/Eq), so that at optimality the
       normalised dual is -(its reduced cost); [dual_sign] undoes the rhs
       flip. *)
    let dual_col = Array.make m 0 in
    let dual_sign = Array.make m 1 in
    Array.iteri
      (fun i (terms, op, rhs, flipped) ->
        let row = rows.(i) in
        List.iter (fun (v, c) -> row.(v) <- F.add row.(v) (F.of_rat c)) terms;
        row.(cols) <- F.of_rat rhs;
        dual_sign.(i) <- (if flipped then -1 else 1);
        (match op with
         | Model.Le ->
           row.(!next_slack) <- F.one;
           basis.(i) <- !next_slack;
           dual_col.(i) <- !next_slack;
           incr next_slack
         | Model.Ge ->
           row.(!next_slack) <- F.neg F.one;
           incr next_slack;
           row.(!next_art) <- F.one;
           basis.(i) <- !next_art;
           dual_col.(i) <- !next_art;
           incr next_art
         | Model.Eq ->
           row.(!next_art) <- F.one;
           basis.(i) <- !next_art;
           dual_col.(i) <- !next_art;
           incr next_art))
      norm;
    let t = { rows; basis; objrow = Array.make (cols + 1) F.zero; cols; art_start; nvars = n } in
    let dropped = Hashtbl.create 4 in
    let feasible = ref true in
    if !art_count > 0 then begin
      (* Phase 1: minimise the sum of artificial variables. *)
      let cost = Array.make cols F.zero in
      for j = art_start to cols - 1 do
        cost.(j) <- F.one
      done;
      set_objective_row t cost;
      (match iterate t ~enter_ok:(fun _ -> true) ~max_iters with
       | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
       | `Optimal -> ());
      let z1 = F.neg t.objrow.(t.cols) in
      if F.compare z1 F.zero > 0 then feasible := false
      else begin
        (* Drive artificials out of the basis; drop redundant rows. *)
        let keep = ref [] in
        Array.iteri
          (fun i row ->
            if t.basis.(i) >= art_start then begin
              let piv = ref (-1) in
              for j = 0 to art_start - 1 do
                if !piv < 0 && not (F.is_zero row.(j)) then piv := j
              done;
              if !piv >= 0 then begin
                pivot t i !piv;
                keep := i :: !keep
              end
              (* else: all-zero structural row => linearly dependent, drop *)
            end
            else keep := i :: !keep)
          t.rows;
        let keep = List.sort compare !keep in
        Array.iteri (fun i _ -> if not (List.mem i keep) then Hashtbl.replace dropped i ()) t.rows;
        t.rows <- Array.of_list (List.map (fun i -> t.rows.(i)) keep);
        t.basis <- Array.of_list (List.map (fun i -> t.basis.(i)) keep)
      end
    end;
    if !feasible then `Feasible { tab = t; m; dual_col; dual_sign; dropped } else `Infeasible

  (* Phase-2 cost vector of the model, over the tableau's columns. *)
  let model_cost model t =
    let cost = Array.make t.cols F.zero in
    List.iter (fun (v, c) -> cost.(v) <- F.add cost.(v) (F.of_rat c)) (Model.objective model);
    cost

  (* Duals: for constraint i with auxiliary column j whose original entries
     were +e_i, the reduced cost is r_j = -y_i, so y_i = -r_j, sign-adjusted
     for flipped rows. Dropped (redundant) rows get dual 0. *)
  let extract_duals p =
    let t = p.tab in
    let duals = Array.make p.m F.zero in
    for i = 0 to p.m - 1 do
      if not (Hashtbl.mem p.dropped i) then begin
        let y = F.neg t.objrow.(p.dual_col.(i)) in
        duals.(i) <- (if p.dual_sign.(i) < 0 then F.neg y else y)
      end
    done;
    duals

  let solve_max_iters model ~max_iters =
    match prepare model ~max_iters with
    | `Infeasible -> Infeasible
    | `Feasible p ->
      let t = p.tab in
      (* Phase 2: original objective; artificial columns are barred from
         entering. *)
      set_objective_row t (model_cost model t);
      (match iterate t ~enter_ok:(fun j -> j < t.art_start) ~max_iters with
       | `Unbounded -> Unbounded
       | `Optimal ->
         let solution = Array.make t.nvars F.zero in
         Array.iteri
           (fun i row -> if t.basis.(i) < t.nvars then solution.(t.basis.(i)) <- row.(t.cols))
           t.rows;
         let objective = F.neg t.objrow.(t.cols) in
         Optimal { objective; solution; duals = extract_duals p })

  let solve model = solve_max_iters model ~max_iters:1_000_000

  (* Warm-started restricted master: keep the optimal tableau alive, append
     priced columns, and continue primal simplex from the current basis
     instead of re-solving from scratch. See the .mli for the algebra. *)
  module Restricted = struct
    type master = {
      p : prepared;
      orig_cols : int;  (* columns before any append; appended live above *)
      max_iters : int;
      (* Phase-2 cost per tableau column (length cols, grows with appends):
         needed to price a fresh column against whatever basis is current. *)
      mutable cost : F.t array;
      mutable appended : int;
    }

    type t = master

    let create ?(max_iters = 1_000_000) model =
      match prepare model ~max_iters with
      | `Infeasible -> `Infeasible
      | `Feasible p ->
        let t = p.tab in
        let cost = model_cost model t in
        set_objective_row t cost;
        (match iterate t ~enter_ok:(fun j -> j < t.art_start) ~max_iters with
         | `Unbounded -> `Unbounded
         | `Optimal -> `Optimal { p; orig_cols = t.cols; max_iters; cost; appended = 0 })

    let objective rm = F.neg rm.p.tab.objrow.(rm.p.tab.cols)
    let duals rm = extract_duals rm.p
    let num_appended rm = rm.appended

    (* Solution over [nvars] model variables followed by the appended
       columns in append order. *)
    let solution rm =
      let t = rm.p.tab in
      let sol = Array.make (t.nvars + rm.appended) F.zero in
      Array.iteri
        (fun i row ->
          let b = t.basis.(i) in
          if b < t.nvars then sol.(b) <- row.(t.cols)
          else if b >= rm.orig_cols then sol.(t.nvars + (b - rm.orig_cols)) <- row.(t.cols))
        t.rows;
      sol

    (* Append a variable with objective coefficient [obj] and constraint
       coefficients [entries] (original constraint index, coefficient).
       The tableau carries B^-1 A, so the new column enters as B^-1 a —
       assembled from the identity columns that dual recovery already
       tracks: B^-1 a = sum_r a_r * T[., dual_col r] (with a sign-adjusted
       for flipped rows). Valid only while no row was dropped as redundant:
       a dropped row's dependency need not extend to the new variable, so
       in that case the caller must rebuild ([`Needs_rebuild]). *)
    let add_column rm ~obj ~entries =
      if Hashtbl.length rm.p.dropped > 0 then `Needs_rebuild
      else begin
        let t = rm.p.tab in
        let nrows = Array.length t.rows in
        let col = Array.make nrows F.zero in
        List.iter
          (fun (r, a) ->
            let a = F.of_rat (if rm.p.dual_sign.(r) < 0 then Spp_num.Rat.neg a else a) in
            if not (F.is_zero a) then begin
              let jc = rm.p.dual_col.(r) in
              for i = 0 to nrows - 1 do
                col.(i) <- F.add col.(i) (F.mul a t.rows.(i).(jc))
              done
            end)
          entries;
        let oldc = t.cols in
        t.rows <-
          Array.mapi
            (fun i row ->
              let nr = Array.make (oldc + 2) F.zero in
              Array.blit row 0 nr 0 oldc;
              nr.(oldc) <- col.(i);
              nr.(oldc + 1) <- row.(oldc);
              nr)
            t.rows;
        (* Reduced cost under the current basis: c_new - c_B . B^-1 a.
           Existing reduced costs are unaffected by a new column. *)
        let c = F.of_rat obj in
        let red = ref c in
        for i = 0 to nrows - 1 do
          let cb = rm.cost.(t.basis.(i)) in
          if not (F.is_zero cb) then red := F.sub !red (F.mul cb col.(i))
        done;
        let nobj = Array.make (oldc + 2) F.zero in
        Array.blit t.objrow 0 nobj 0 oldc;
        nobj.(oldc) <- !red;
        nobj.(oldc + 1) <- t.objrow.(oldc);
        t.objrow <- nobj;
        let ncost = Array.make (oldc + 1) F.zero in
        Array.blit rm.cost 0 ncost 0 oldc;
        ncost.(oldc) <- c;
        rm.cost <- ncost;
        t.cols <- oldc + 1;
        rm.appended <- rm.appended + 1;
        `Added
      end

    (* The basis is still feasible after appends (new variables sit
       nonbasic at 0), so plain primal iterations finish the job. *)
    let reoptimize rm =
      let t = rm.p.tab in
      iterate t
        ~enter_ok:(fun j -> j < t.art_start || j >= rm.orig_cols)
        ~max_iters:rm.max_iters
  end
end

module Exact = struct
  module M = Make (Field.Rat)

  let solve = M.solve
  module Restricted = M.Restricted
end

module Approx = struct
  module M = Make (Field.Float)

  let solve model = M.solve_max_iters model ~max_iters:100_000
end
