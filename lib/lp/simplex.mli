(** Two-phase primal simplex over an abstract scalar field.

    Dense-tableau implementation. Pricing uses Dantzig's rule (fast in
    practice) with a permanent-until-progress fallback to Bland's rule after
    a run of degenerate pivots, so termination is guaranteed for the exact
    field. Solving a model returns a {e basic} optimal solution — the
    property the paper's Lemma 3.3 relies on to bound the number of
    configuration occurrences by the number of constraints, which in turn
    drives the additive loss of Lemma 3.4.

    Not polynomial time in the worst case (the paper cites ellipsoid /
    Karmarkar for that); DESIGN.md documents this substitution — instance
    sizes here make simplex the pragmatic exact choice.

    For column generation the solver also exposes a {e restricted master}
    interface ({!Make.Restricted}, re-exported as {!Exact.Restricted}): the
    optimal tableau is kept alive between pricing rounds, newly priced
    columns are appended as [B{^-1}a] (assembled from the identity columns
    dual recovery already tracks), and reoptimisation continues primal
    simplex from the current basis — collapsing per-round pivot counts
    compared to re-solving every restricted LP from scratch. *)

type 'a result =
  | Optimal of { objective : 'a; solution : 'a array; duals : 'a array }
      (** [solution] has one entry per model variable; at most
          [num_constraints] entries are nonzero (basicness). [duals] has one
          entry per constraint (in insertion order): the marginal change of
          the optimal objective per unit increase of that constraint's
          right-hand side (0 for constraints dropped as redundant). Used by
          the column-generation pricing in {!Spp_core.Config_colgen}. *)
  | Infeasible
  | Unbounded

module Make (F : Field.S) : sig
  (** [solve model] minimises the model objective over its feasible region.
      All model variables are implicitly non-negative. *)
  val solve : Model.t -> F.t result

  (** [solve_max_iters model ~max_iters] bounds pivot count (safety valve for
      the float instance, which tolerance-compare could in principle cycle).
      @raise Failure if the bound is hit. *)
  val solve_max_iters : Model.t -> max_iters:int -> F.t result

  (** Warm-started restricted master for column generation. *)
  module Restricted : sig
    type t

    (** [create model] solves [model] to optimality and keeps the final
        tableau (basis, reduced costs, dual bookkeeping) alive so columns
        can be appended and the solve continued. *)
    val create : ?max_iters:int -> Model.t -> [ `Optimal of t | `Infeasible | `Unbounded ]

    (** Current optimal objective value. Only meaningful at an optimum
        (after [create] or a successful {!reoptimize}). *)
    val objective : t -> F.t

    (** Solution values: one entry per original model variable followed by
        one per appended column, in append order. *)
    val solution : t -> F.t array

    (** Dual value per original constraint, insertion order (0 for rows
        dropped as redundant) — same convention as {!result}. *)
    val duals : t -> F.t array

    (** Number of columns appended so far. *)
    val num_appended : t -> int

    (** [add_column rm ~obj ~entries] appends a variable with objective
        coefficient [obj] and [entries] = (constraint index, coefficient)
        pairs over the {e original} constraints. The new variable enters
        nonbasic at 0, so the current basis stays feasible; call
        {!reoptimize} after a batch of appends. Returns [`Needs_rebuild]
        when phase 1 dropped a redundant row — the dropped row's linear
        dependency need not extend to new columns, so the caller must
        rebuild the master from scratch (sound, merely colder). *)
    val add_column :
      t -> obj:Spp_num.Rat.t -> entries:(int * Spp_num.Rat.t) list -> [ `Added | `Needs_rebuild ]

    (** Continue primal simplex from the current feasible basis, admitting
        appended columns as entering candidates. *)
    val reoptimize : t -> [ `Optimal | `Unbounded ]
  end
end

(** Exact solver over rationals. *)
module Exact : sig
  val solve : Model.t -> Spp_num.Rat.t result

  module Restricted : sig
    type t

    val create :
      ?max_iters:int -> Model.t -> [ `Optimal of t | `Infeasible | `Unbounded ]

    val objective : t -> Spp_num.Rat.t
    val solution : t -> Spp_num.Rat.t array
    val duals : t -> Spp_num.Rat.t array
    val num_appended : t -> int

    val add_column :
      t -> obj:Spp_num.Rat.t -> entries:(int * Spp_num.Rat.t) list -> [ `Added | `Needs_rebuild ]

    val reoptimize : t -> [ `Optimal | `Unbounded ]
  end
end

(** Floating-point solver (tolerance-based pivoting). *)
module Approx : sig
  val solve : Model.t -> float result
end
