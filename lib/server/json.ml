type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the string, [Failure]-free interface. *)

exception Bad of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Bad (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
    st.pos <- st.pos + 1;
    c
  | None -> fail st "unexpected end of input"

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  let got = next st in
  if got <> c then fail st (Printf.sprintf "expected %C, got %C" c got)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let hex4 st =
  let digit () =
    match next st with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "invalid \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (match next st with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         let cp = hex4 st in
         let cp =
           (* Combine a surrogate pair when present; a lone surrogate maps
              to U+FFFD rather than failing the whole message. *)
           if cp >= 0xD800 && cp <= 0xDBFF then begin
             if peek st = Some '\\' then begin
               let save = st.pos in
               st.pos <- st.pos + 1;
               if peek st = Some 'u' then begin
                 st.pos <- st.pos + 1;
                 let lo = hex4 st in
                 if lo >= 0xDC00 && lo <= 0xDFFF then
                   0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                 else begin
                   st.pos <- save;
                   0xFFFD
                 end
               end
               else begin
                 st.pos <- save;
                 0xFFFD
               end
             end
             else 0xFFFD
           end
           else if cp >= 0xDC00 && cp <= 0xDFFF then 0xFFFD
           else cp
         in
         add_utf8 buf cp
       | c -> fail st (Printf.sprintf "invalid escape \\%C" c));
      go ()
    | c when Char.code c < 0x20 -> fail st "unescaped control character in string"
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let digits () =
    let had = ref false in
    while (match peek st with Some '0' .. '9' -> true | _ -> false) do
      had := true;
      st.pos <- st.pos + 1
    done;
    if not !had then fail st "invalid number"
  in
  digits ();
  let is_float = ref false in
  if peek st = Some '.' then begin
    is_float := true;
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
   | Some ('e' | 'E') ->
     is_float := true;
     st.pos <- st.pos + 1;
     (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
     digits ()
   | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value depth st =
  if depth > 128 then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' ->
    st.pos <- st.pos + 1;
    String (parse_string_body st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value (depth + 1) st in
        skip_ws st;
        match next st with
        | ',' -> elems (v :: acc)
        | ']' -> List (List.rev (v :: acc))
        | c -> fail st (Printf.sprintf "expected ',' or ']', got %C" c)
      in
      elems []
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        expect st '"';
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value (depth + 1) st in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws st;
        match next st with
        | ',' -> fields (kv :: acc)
        | '}' -> Obj (List.rev (kv :: acc))
        | c -> fail st (Printf.sprintf "expected ',' or '}', got %C" c)
      in
      fields []
    end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value 0 st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Bad msg -> Error msg
  | exception Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let get_list = function List xs -> Some xs | _ -> None
