(** The `spp serve` wire protocol: newline-delimited JSON.

    Every message is one JSON object on one line (JSON escaping guarantees
    the encoded form contains no ['\n'], so instance texts with embedded
    newlines travel safely). Requests carry an ["op"] field; responses
    carry ["ok"] — [true] with an op-specific payload, or [false] with an
    ["error"] code and human-readable ["message"].

    Requests:
    {v
    {"op":"solve","instance":"rect 0 1/2 1\n...","budget_ms":100,"algos":["dc","bb"],"trace_id":"beef"}
    {"op":"metrics"}
    {"op":"health"}
    {"op":"shutdown"}
    v}

    [budget_ms], [deadline_ms], [algos] and [trace_id] are optional; a
    supplied [trace_id] turns on span recording for that request and is
    echoed in the reply, so a caller can correlate its own ids with the
    server's slow-request log. Responses are documented on the
    constructors below; the full shapes (with examples) are specified in
    README.md. Encoding and decoding are exact inverses — round-tripping
    is property-tested on adversarial payloads. *)

type request =
  | Solve of {
      instance : string;  (** instance file text, {!Spp_core.Io} format *)
      budget_ms : float option;
      deadline_ms : float option;
          (** the caller's {e remaining} end-to-end budget, relative
              (never an absolute timestamp — the hops' clocks differ).
              Each hop subtracts the time the request spends inside it
              before forwarding; a server that cannot possibly answer in
              the remainder fast-fails with [Wont_make_it]. Distinct
              from [budget_ms], which caps solver compute alone: the
              effective engine budget is the minimum of the two. *)
      algos : string list option;
      trace_id : string option;  (** client-chosen id; enables tracing *)
    }
  | Metrics
  | Health
  | Shutdown

type error_code =
  | Parse  (** request line is not valid JSON / not a known request shape *)
  | Bad_request  (** well-formed but unservable (e.g. unknown algorithm) *)
  | Bad_instance  (** the inline instance text failed to parse *)
  | Overloaded  (** admission queue full — retry later *)
  | Wont_make_it
      (** the propagated [deadline_ms] has (nearly) run out — answering
          would arrive too late, so no worker was burned; carries a
          [retry_after_ms] hint like [Overloaded] *)
  | Shutting_down  (** server is draining; no new work accepted *)
  | Internal  (** unexpected server-side failure *)

type solve_reply = {
  winner : string;
  source : string;  (** ["computed"], ["cache.memory"] or ["cache.disk"] *)
  height : string;  (** exact rational, e.g. ["7/2"] *)
  time_ms : float;  (** engine wall clock for this solve *)
  placement : string;  (** {!Spp_core.Io.placement_to_string} text *)
  degraded : bool;
      (** the budget expired mid-race and this is the engine's best
          feasible incumbent, not the full portfolio's answer. Still a
          validated packing. Degraded replies are never cached — not by
          the engine, the disk store, or the proxy snoop. Omitted from
          the wire when [false]. *)
  lower_bound : string option;
      (** exact-rational instance lower bound (Section 2/3 bounds) —
          present on computed replies so a client can judge the answer *)
  gap : string option;
      (** exact-rational [height - lower_bound], always [>= 0] *)
  trace_id : string option;  (** present iff the request was traced *)
  trace : Json.t option;
      (** the responder's span tree for this request — the value of
          {!Spp_obs.Trace.to_json} — present only on traced requests.
          The proxy grafts a backend's tree under its own [upstream]
          span and replaces this field with the stitched trace, so the
          client sees one end-to-end tree. Stripped before replies are
          cached (a replay's trace would be a lie). *)
}

type cache_stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

(** One server-side histogram: observation count, sum, interpolated
    percentiles, and the cumulative finite buckets (the implicit [+Inf]
    bucket count equals [count]). *)
type hist_reply = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;  (** (upper bound, cumulative count) *)
}

(** Per-algorithm race record, aggregated over the server's lifetime. *)
type algo_reply = { wins : int; solved : int; timeouts : int; invalid : int; failed : int }

type metrics_reply = {
  uptime_ms : float;
  counters : (string * int) list;  (** registry counters, sorted *)
  cache : cache_stats;  (** the shared in-memory LRU *)
  store_dir : string option;  (** disk cache directory, if enabled *)
  workers : int;
  queue_length : int;
  queue_capacity : int;
  histograms : (string * hist_reply) list;  (** e.g. [spp_solve_ms] *)
  algos : (string * algo_reply) list;  (** keyed by portfolio member *)
}

type health_reply = { uptime_s : float; cache_capacity : int }

type response =
  | Solve_ok of solve_reply
  | Metrics_ok of metrics_reply
  | Health_ok of health_reply
  | Shutdown_ok  (** acknowledged; the server begins draining *)
  | Error of { code : error_code; message : string; retry_after_ms : int option }
      (** [retry_after_ms] is a backoff hint, set on [Overloaded] replies:
          clients that retry should wait at least this long. Omitted from
          the wire when [None]. *)

val error_code_to_string : error_code -> string

(** [error_code_of_string s] — inverse of {!error_code_to_string}. *)
val error_code_of_string : string -> error_code option

(** [encode_request r] is one line of JSON (no trailing newline). *)
val encode_request : request -> string

(** [decode_request line] — never raises; junk bytes yield [Error]. *)
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result
