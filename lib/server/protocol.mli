(** The `spp serve` wire protocol: newline-delimited JSON.

    Every message is one JSON object on one line (JSON escaping guarantees
    the encoded form contains no ['\n'], so instance texts with embedded
    newlines travel safely). Requests carry an ["op"] field; responses
    carry ["ok"] — [true] with an op-specific payload, or [false] with an
    ["error"] code and human-readable ["message"].

    Requests:
    {v
    {"op":"solve","instance":"rect 0 1/2 1\n...","budget_ms":100,"algos":["dc","bb"]}
    {"op":"metrics"}
    {"op":"health"}
    {"op":"shutdown"}
    v}

    [budget_ms] and [algos] are optional. Responses are documented on the
    constructors below; the full shapes (with examples) are specified in
    README.md. Encoding and decoding are exact inverses — round-tripping
    is property-tested on adversarial payloads. *)

type request =
  | Solve of {
      instance : string;  (** instance file text, {!Spp_core.Io} format *)
      budget_ms : float option;
      algos : string list option;
    }
  | Metrics
  | Health
  | Shutdown

type error_code =
  | Parse  (** request line is not valid JSON / not a known request shape *)
  | Bad_request  (** well-formed but unservable (e.g. unknown algorithm) *)
  | Bad_instance  (** the inline instance text failed to parse *)
  | Overloaded  (** admission queue full — retry later *)
  | Shutting_down  (** server is draining; no new work accepted *)
  | Internal  (** unexpected server-side failure *)

type solve_reply = {
  winner : string;
  source : string;  (** ["computed"], ["cache.memory"] or ["cache.disk"] *)
  height : string;  (** exact rational, e.g. ["7/2"] *)
  time_ms : float;  (** engine wall clock for this solve *)
  placement : string;  (** {!Spp_core.Io.placement_to_string} text *)
}

type cache_stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

type metrics_reply = {
  uptime_ms : float;
  counters : (string * int) list;  (** engine telemetry counters, sorted *)
  cache : cache_stats;  (** the shared in-memory LRU *)
  store_dir : string option;  (** disk cache directory, if enabled *)
  workers : int;
  queue_length : int;
  queue_capacity : int;
}

type response =
  | Solve_ok of solve_reply
  | Metrics_ok of metrics_reply
  | Health_ok
  | Shutdown_ok  (** acknowledged; the server begins draining *)
  | Error of { code : error_code; message : string }

val error_code_to_string : error_code -> string

(** [error_code_of_string s] — inverse of {!error_code_to_string}. *)
val error_code_of_string : string -> error_code option

(** [encode_request r] is one line of JSON (no trailing newline). *)
val encode_request : request -> string

(** [decode_request line] — never raises; junk bytes yield [Error]. *)
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result
