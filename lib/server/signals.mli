(** Signal plumbing for the daemon.

    OCaml signal handlers run between safe points, so a handler must do
    almost nothing: {!on_termination}'s callback should only flip an
    atomic flag (e.g. {!Server.stop}) — the accept loop polls the flag and
    performs the actual teardown on its own thread, which is what makes
    SIGTERM-under-load drain cleanly instead of deadlocking on a mutex the
    interrupted thread already holds. *)

(** [on_termination f] installs [f] as the handler for SIGINT and SIGTERM
    (or [signals]). [f] is called on every delivery and must be
    async-signal-light: set flags, nothing blocking. Platforms without a
    signal (or where the handler cannot be installed) are skipped
    silently. *)
val on_termination : ?signals:int list -> (unit -> unit) -> unit

(** [ignore_sigpipe ()] — a peer closing its socket mid-write must surface
    as [EPIPE] on the write, not kill the process. Called by
    {!Server.start} and {!Client.connect}; idempotent. *)
val ignore_sigpipe : unit -> unit
