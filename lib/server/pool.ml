type t = { domains : unit Domain.t list }

let start ~workers f q =
  let worker () =
    let rec loop () =
      match Bqueue.pop q with
      | None -> ()
      | Some job ->
        (try f job with _ -> ());
        loop ()
    in
    loop ()
  in
  { domains = List.init (max 1 workers) (fun _ -> Domain.spawn worker) }

let size t = List.length t.domains
let join t = List.iter Domain.join t.domains
