module Log = Spp_obs.Log

type t = {
  supervisors : Thread.t list;
  deaths : int Atomic.t;
  restarts : int Atomic.t;
  live : int Atomic.t;  (* worker slots with a running (or restartable) domain *)
}

exception Pool_dead

let default_max_restarts = 16

let start ?(max_restarts = default_max_restarts) ?on_crash ~workers f q =
  let workers = max 1 workers in
  let deaths = Atomic.make 0 in
  let restarts = Atomic.make 0 in
  let live = Atomic.make workers in
  let crash job exn =
    match on_crash with
    | None -> ()
    | Some g -> ( try g job exn with _ -> ())
  in
  (* Worker domain body: pop until the queue drains. A job that raises
     (or a pool.job fault) first fails its own job via [crash], then lets
     the exception escape the domain so the supervisor sees the death. *)
  let worker () =
    let rec loop () =
      match Bqueue.pop q with
      | None -> ()
      | Some job ->
        (match
           Spp_util.Fault.hit "pool.job";
           f job
         with
         | () -> ()
         | exception exn ->
           crash job exn;
           raise exn);
        loop ()
    in
    loop ()
  in
  (* If every slot has exhausted its restart budget, nobody will ever pop
     again: close the queue (new pushes shed at admission) and fail any
     queued jobs so their clients get an answer instead of a hang. *)
  let drain_dead () =
    Bqueue.close q;
    let rec drain () =
      match Bqueue.pop q with
      | None -> ()
      | Some job ->
        crash job Pool_dead;
        drain ()
    in
    drain ()
  in
  let slot_down () =
    if Atomic.fetch_and_add live (-1) = 1 && not (Bqueue.is_closed q) then begin
      Log.error "worker pool dead: all restart budgets exhausted"
        [ ("workers", Spp_obs.Field.Int workers) ];
      drain_dead ()
    end
  in
  (* One supervisor thread per slot: spawn the domain, join it, and on an
     escaped exception restart within the slot's budget. A clean join
     (queue closed and drained) ends the slot. *)
  let supervise slot =
    let rec run spent =
      match Domain.join (Domain.spawn worker) with
      | () -> Atomic.decr live
      | exception exn ->
        Atomic.incr deaths;
        if Bqueue.is_closed q && Bqueue.length q = 0 then Atomic.decr live
        else if spent < max_restarts then begin
          Atomic.incr restarts;
          Log.warn "worker domain died; restarting"
            [ ("slot", Spp_obs.Field.Int slot);
              ("error", Spp_obs.Field.String (Printexc.to_string exn));
              ("restarts_left", Spp_obs.Field.Int (max_restarts - spent - 1)) ];
          run (spent + 1)
        end
        else begin
          Log.error "worker slot out of restart budget"
            [ ("slot", Spp_obs.Field.Int slot);
              ("error", Spp_obs.Field.String (Printexc.to_string exn)) ];
          slot_down ()
        end
    in
    run 0
  in
  { supervisors = List.init workers (fun slot -> Thread.create supervise slot);
    deaths; restarts; live }

let size t = List.length t.supervisors
let deaths t = Atomic.get t.deaths
let restarts t = Atomic.get t.restarts
let join t = List.iter Thread.join t.supervisors
