(** Socket addresses and newline framing over raw file descriptors.

    The byte layer under {!Protocol}: a server listens on (and a client
    connects to) a Unix-domain or TCP address, and messages are framed as
    lines — one message per ['\n']-terminated line. The reader is buffered,
    tolerates messages split across arbitrary [read] boundaries, strips an
    optional trailing ['\r'] (so hand-typed [nc]/telnet sessions and
    Windows clients parse cleanly), and enforces a maximum line length so
    a malicious or broken peer cannot make the server buffer unbounded
    garbage. The limit applies to the logical line — after the CR strip —
    so CRLF peers get the same effective capacity as LF ones. Reads and connects can carry deadlines (monotonic
    {!Spp_util.Clock}, immune to wall-clock steps) so a stalled peer is
    cut loose instead of pinning a thread.

    Fault points (see {!Spp_util.Fault}): [framing.read] and
    [framing.write] fire as [Unix.Unix_error (EIO, "fault", point)], i.e.
    exactly the shape of a real broken socket. *)

type address =
  | Unix_sock of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad), port *)

val address_to_string : address -> string

(** [listen addr] binds and listens. For [Unix_sock] a pre-existing socket
    file at the path is unlinked first; for [Tcp] the socket is bound with
    [SO_REUSEADDR]. @raise Unix.Unix_error on failure. *)
val listen : ?backlog:int -> address -> Unix.file_descr

(** Raised when a deadline passes: by {!connect} with [timeout_ms], and by
    {!read_line} with [idle_timeout_ms] / [read_timeout_ms]. *)
exception Timeout

(** [connect addr] connects a fresh stream socket. With [timeout_ms] the
    connect is non-blocking under the hood and raises {!Timeout} if the
    peer does not accept in time.
    @raise Unix.Unix_error on failure (e.g. nobody listening). *)
val connect : ?timeout_ms:float -> address -> Unix.file_descr

type reader

(** Default {!reader} line limit (8 MiB). *)
val default_max_line : int

(** Raised by {!read_line} when a line exceeds the reader's limit. *)
exception Line_too_long

(** [reader fd] wraps [fd] for buffered line reading.
    [max_line_bytes] defaults to 8 MiB. *)
val reader : ?max_line_bytes:int -> Unix.file_descr -> reader

(** [read_line r] is the next line without its terminator ([None] at EOF;
    a final unterminated line is returned before EOF is reported). Retries
    [EINTR]; other I/O errors propagate as [Unix.Unix_error].

    Deadlines (both optional, in milliseconds, measured on the monotonic
    {!Spp_util.Clock}):
    - [idle_timeout_ms] bounds the wait for the next line to {e begin},
      anchored at this call. Raises {!Timeout} if no byte of a new line
      arrives in time.
    - [read_timeout_ms] bounds how long a line may take to {e complete},
      anchored at the arrival of its first byte (which may precede this
      call when a partial line is already buffered). This is the
      slow-loris guard: trickling one byte per idle-timeout still trips it.

    Lines already buffered from previous reads are returned without
    consulting either deadline. *)
val read_line :
  ?idle_timeout_ms:float -> ?read_timeout_ms:float -> reader -> string option

(** [write_line fd s] writes [s] followed by ['\n'], looping until all
    bytes are written. [s] must not contain ['\n'] (callers encode with
    {!Protocol}/{!Json}, which escape it). *)
val write_line : Unix.file_descr -> string -> unit
