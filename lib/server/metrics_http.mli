(** Minimal HTTP exposition endpoint for Prometheus scrapes.

    Serves [GET /metrics] with {!Spp_obs.Expo.render} of one registry
    over plain HTTP/1.1, one request per connection ([Connection: close]
    — exactly the shape Prometheus and [curl] speak). Anything else gets
    a 404/405. Not a general web server: requests are handled inline on
    the accept thread under a 2-second budget, which is plenty for a
    scrape every few seconds and keeps the daemon's thread count flat. *)

type t

(** [start ~port registry] binds [host] (default loopback) and serves
    until {!stop}. [port] 0 picks a free port — read it back with
    {!port}. @raise Unix.Unix_error if the address cannot be bound. *)
val start : ?host:string -> port:int -> Spp_obs.Metrics.t -> t

val port : t -> int

(** [fetch ~host ~port ()] scrapes [GET /metrics] from a live endpoint
    (this module's server, or any Prometheus-style exporter) and returns
    the exposition text. Plain HTTP/1.1, [Connection: close]; parse the
    body with {!Spp_obs.Promtext}. Never raises — transport failures,
    timeouts (default budget 2 s) and non-200 statuses are [Error]. *)
val fetch :
  ?timeout_ms:float -> host:string -> port:int -> unit -> (string, string) result

(** [stop t] shuts the endpoint down and joins its thread. Idempotent. *)
val stop : t -> unit
