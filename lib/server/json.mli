(** Minimal JSON values, parser and printer for the wire protocol.

    The repository is dependency-sealed (no yojson), so the serving layer
    carries its own JSON: the full value grammar, one-line compact
    printing, and a recursive-descent parser that returns [Error] instead
    of raising on malformed input — a junk byte from a client must become
    an error reply, never a crash.

    Numbers parse to {!Int} when they are integral and fit an OCaml [int],
    to {!Float} otherwise; the printer keeps the distinction ([Float 2.]
    prints as ["2.0"]) so values round-trip. Strings are full UTF-8 with
    the standard escapes (including [\uXXXX] with surrogate pairs). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] is compact one-line JSON: control characters (newlines
    included) are escaped, so the output never contains ['\n'] and can be
    framed by newline-delimiting. Non-finite floats print as [null]. *)
val to_string : t -> string

(** [of_string s] parses exactly one JSON value (surrounding whitespace
    allowed; trailing garbage is an error). Never raises. *)
val of_string : string -> (t, string) result

(** {2 Accessors} — all total, [None] on a type mismatch. *)

(** [member name v] is the field [name] of object [v]. *)
val member : string -> t -> t option

val get_string : t -> string option
val get_bool : t -> bool option
val get_int : t -> int option

(** [get_float] accepts both {!Float} and {!Int}. *)
val get_float : t -> float option

val get_list : t -> t list option
