(** The `spp serve` daemon: a long-running network front end over one
    shared {!Spp_engine.Engine.t}.

    Concurrency shape:

    {v
    acceptor thread --accept--> connection threads (one per client)
                                   | parse line, admission-check,
                                   | try_push job  ----------------+
                                   | block on reply mailbox        |
                                   v                               v
                             bounded Bqueue  <--pop--  worker pool (domains)
                                                         Engine.solve
    v}

    - The acceptor feeds connections to lightweight threads; each thread
      handles its client's requests strictly in order (the protocol is
      synchronous per connection).
    - [solve] requests are admitted to a bounded queue; when it is full
      the client gets an immediate [overloaded] error instead of
      unbounded latency (load shedding).
    - Worker domains share one engine, so the in-memory LRU, the disk
      store and the telemetry counters accumulate across all clients —
      repeats are served from cache at memory speed.
    - Per-request deadlines ([budget_ms], or the server default) become
      {!Spp_util.Cancel} tokens inside the engine, so exact solvers are
      cancelled cooperatively and every request still returns a valid
      packing via the engine's fallback.
    - Propagated deadlines ([deadline_ms] on the wire) are pinned to the
      server's clock at receipt ({!Spp_util.Deadline}); a request whose
      remainder is already below [deadline_floor_ms] is fast-failed at
      admission with [wont_make_it] (plus a [retry_after_ms] hint), and
      one that ages out while queued is turned away at dispatch instead
      of burning a worker — both counted in
      [spp_deadline_rejects_total]{[stage]}. Otherwise the engine budget
      is capped by the remaining deadline, so a budget-expired solve
      comes back as the engine's anytime incumbent with [degraded: true]
      (counted in [spp_degraded_replies_total]) rather than late.
    - {!stop} (from a signal handler, a [shutdown] request, or a test)
      only flips a flag; the acceptor notices within ~50 ms and drains:
      the listener closes (new connections refused), idle connections are
      woken and closed, in-flight requests complete and their replies are
      written, then the queue closes and the workers exit.
    - Robustness: worker domains are supervised (see {!Pool}) — a job
      whose worker dies still receives a structured [internal] reply, and
      deaths/restarts surface as [spp_worker_deaths_total] /
      [spp_worker_restarts_total]. Connections that idle past
      [idle_timeout_ms] or trickle a request past [read_timeout_ms] are
      reaped ([spp_connections_reaped_total]); [overloaded] replies carry
      a [retry_after_ms] hint.

    Observability: the server registers its instruments on the engine
    telemetry's {!Spp_obs.Metrics} registry — [spp_requests_total]{[op]},
    [spp_requests_shed_total], [spp_connections_total], queue depth and
    in-flight gauges, bytes in/out, and [spp_request_ms] /
    [spp_queue_wait_ms] / request-and-response size histograms — so one
    registry feeds the [metrics] op and the scrape endpoint
    ({!Metrics_http}). A solve request is traced ({!Spp_obs.Trace}) when
    the client supplies a [trace_id], when [slow_ms] is set, or when the
    log level is [Debug]; its span tree covers queue wait, the engine's
    cache probe and race, and the reply write. Requests slower than
    [slow_ms] are logged at [warn] with the rendered trace attached. *)

type config = {
  address : Framing.address;
  workers : int;  (** worker domains sharing the engine *)
  queue_depth : int;  (** admission queue bound (load shedding above it) *)
  engine : Spp_engine.Engine.t;
  default_budget_ms : float option;
      (** applied to [solve] requests that carry no budget *)
  solve_workers : int option;
      (** domains racing portfolio members inside one solve (default:
          engine default; keep [workers * solve_workers] near the core
          count) *)
  max_request_bytes : int;  (** request-line size cap, see {!Framing} *)
  slow_ms : float option;
      (** log requests slower than this at [warn] with their span tree;
          also forces every solve request to be traced *)
  idle_timeout_ms : float option;
      (** reap a connection that starts no new request for this long
          ([None] = never); counted in [spp_connections_reaped_total] *)
  read_timeout_ms : float option;
      (** reap a connection whose request line takes longer than this to
          complete from its first byte — the slow-loris guard ([None] =
          never) *)
  retry_after_ms : int;
      (** backoff hint attached to [overloaded] replies (see
          {!Protocol.response}) *)
  max_worker_restarts : int option;
      (** per-slot worker restart budget ([None] =
          {!Pool.default_max_restarts}) *)
  deadline_floor_ms : float;
      (** fast-fail [solve] requests whose propagated [deadline_ms]
          remainder is below this with [wont_make_it] — checked at
          admission and again at dispatch after the queue wait *)
}

val default_max_request_bytes : int

(** Default [retry_after_ms] (100). *)
val default_retry_after_ms : int

(** Default [deadline_floor_ms] (5). *)
val default_deadline_floor_ms : float

type t

(** [start cfg] binds the address, spawns the worker pool and the acceptor
    thread, and returns immediately.
    @raise Unix.Unix_error if the address cannot be bound. *)
val start : config -> t

(** [stop t] initiates graceful shutdown. Async-signal-light (an atomic
    store), idempotent, returns immediately — pair with {!wait}. *)
val stop : t -> unit

(** [wait t] blocks until shutdown has fully drained: all connection
    threads joined, queue closed, worker domains exited, listener closed
    (and a Unix socket path unlinked). *)
val wait : t -> unit
