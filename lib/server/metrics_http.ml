module Metrics = Spp_obs.Metrics
module Expo = Spp_obs.Expo
module Log = Spp_obs.Log

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  mutable thread : Thread.t option;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  try go 0 with Unix.Unix_error _ -> ()

(* One request per connection, handled inline: scrapers send a small GET
   and read the reply. A 2 s budget — on the monotonic clock, so a stepped
   wall clock can neither hang nor prematurely kill a scrape — bounds how
   long a stuck peer can hold the accept loop. *)
let handle registry fd =
  let deadline = Spp_util.Clock.now_ms () +. 2_000.0 in
  let reader = Framing.reader ~max_line_bytes:8192 fd in
  let next_line () =
    let left = deadline -. Spp_util.Clock.now_ms () in
    if left <= 0.0 then None
    else
      match Framing.read_line ~idle_timeout_ms:left ~read_timeout_ms:left reader with
      | line -> line
      | exception Framing.Timeout -> None
  in
  let request_line = next_line () in
  (* Drain headers until the blank line (or the budget) so the peer's
     send completes; a peer that stalls mid-headers no longer blocks. *)
  let rec drain_headers () =
    match next_line () with
    | Some s when String.trim s <> "" -> drain_headers ()
    | _ -> ()
  in
  (match request_line with
   | None -> ()
   | Some line ->
     (try drain_headers () with Framing.Line_too_long | Unix.Unix_error _ | Sys_error _ -> ());
     let reply =
       match String.split_on_char ' ' line with
       | "GET" :: path :: _ when path = "/metrics" || path = "/metrics/" ->
         http_response ~status:"200 OK"
           ~content_type:"text/plain; version=0.0.4; charset=utf-8"
           (Expo.render registry)
       | "GET" :: _ ->
         http_response ~status:"404 Not Found" ~content_type:"text/plain"
           "only /metrics is served here\n"
       | _ ->
         http_response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
           "only GET is supported\n"
     in
     write_all fd reply);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t registry =
  let fd = t.listen_fd in
  Unix.set_nonblock fd;
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ fd ] [] [] 0.05 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ :: _, _, _ -> (
         match Unix.accept ~cloexec:true fd with
         | exception
             Unix.Unix_error
               ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
           ()
         | cfd, _ ->
           (try handle registry cfd
            with Framing.Line_too_long | Unix.Unix_error _ | Sys_error _ -> (
              try Unix.close cfd with Unix.Unix_error _ -> ()))));
      loop ()
    end
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ~port registry =
  let listen_fd = Framing.listen (Framing.Tcp (host, port)) in
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { listen_fd; port; stopping = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> accept_loop t registry) ());
  Log.info "metrics endpoint listening"
    [ ("host", Spp_obs.Field.String host); ("port", Spp_obs.Field.Int port) ];
  t

let port t = t.port

(* Minimal scrape client, the inverse of [handle]: one GET, headers
   drained, body read to EOF ([Connection: close] bounds it). Used by
   `spp top` and the live-scrape tests; never raises. *)
let fetch ?(timeout_ms = 2_000.0) ~host ~port () =
  match Framing.connect ~timeout_ms (Framing.Tcp (host, port)) with
  | exception (Unix.Unix_error _ | Failure _ | Framing.Timeout) ->
    Error (Printf.sprintf "connect %s:%d failed" host port)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          write_all fd
            (Printf.sprintf
               "GET /metrics HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n" host
               port);
          let deadline = Spp_util.Clock.now_ms () +. timeout_ms in
          let reader = Framing.reader ~max_line_bytes:8192 fd in
          let next_line () =
            let left = deadline -. Spp_util.Clock.now_ms () in
            if left <= 0.0 then None
            else Framing.read_line ~idle_timeout_ms:left ~read_timeout_ms:left reader
          in
          match next_line () with
          | None -> Error "empty reply"
          | Some status when not (String.length status >= 12 &&
                                  String.sub status 9 3 = "200") ->
            Error (Printf.sprintf "scrape failed: %s" (String.trim status))
          | Some _ ->
            let rec drain () =
              match next_line () with
              | Some s when String.trim s <> "" -> drain ()
              | _ -> ()
            in
            drain ();
            (* The exposition body is itself line-framed text. *)
            let buf = Buffer.create 4096 in
            let rec body () =
              match next_line () with
              | Some line ->
                Buffer.add_string buf line;
                Buffer.add_char buf '\n';
                body ()
              | None -> ()
            in
            body ();
            Ok (Buffer.contents buf)
        with
        | Framing.Timeout -> Error "scrape timed out"
        | Framing.Line_too_long -> Error "scrape reply line too long"
        | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | Sys_error m -> Error m)

let stop t =
  Atomic.set t.stopping true;
  match t.thread with
  | Some th ->
    t.thread <- None;
    Thread.join th
  | None -> ()
