let on_termination ?(signals = [ Sys.sigint; Sys.sigterm ]) f =
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle (fun _ -> f ()))
      with Invalid_argument _ | Sys_error _ -> ())
    signals

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ | Sys_error _ -> ()
