type address =
  | Unix_sock of string
  | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let inet_addr_of host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host))
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let sockaddr_of = function
  | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (inet_addr_of host, port))

let listen ?(backlog = 64) addr =
  let domain, sockaddr = sockaddr_of addr in
  (match addr with
   | Unix_sock path when Sys.file_exists path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | _ -> ());
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

exception Timeout

(* Fault probes surface as I/O errors so every existing handler path
   (close the connection, count a transport failure) exercises exactly as
   it would for a real broken socket. *)
let fault_probe point =
  try Spp_util.Fault.hit point
  with Spp_util.Fault.Injected p -> raise (Unix.Unix_error (Unix.EIO, "fault", p))

(* Non-blocking connect + select so an unresponsive peer cannot pin the
   caller for the kernel's (minutes-long) default. *)
let connect_deadline fd sockaddr addr ms =
  Unix.set_nonblock fd;
  (match Unix.connect fd sockaddr with
   | () -> ()
   | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (
     match Unix.select [] [ fd ] [] (Float.max 0.0 ms /. 1000.0) with
     | _, [], _ -> raise Timeout
     | _ -> (
       match Unix.getsockopt_error fd with
       | None -> ()
       | Some err -> raise (Unix.Unix_error (err, "connect", address_to_string addr)))));
  Unix.clear_nonblock fd

let connect ?timeout_ms addr =
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     match timeout_ms with
     | None -> Unix.connect fd sockaddr
     | Some ms -> connect_deadline fd sockaddr addr ms
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* ------------------------------------------------------------------ *)
(* Line reading *)

exception Line_too_long

type reader = {
  fd : Unix.file_descr;
  max_line : int;
  chunk : Bytes.t;
  acc : Buffer.t;  (** current partial line *)
  mutable queued : string list;  (** complete lines not yet handed out *)
  mutable eof : bool;
  mutable line_start_ms : float option;
      (** monotonic time the current partial line's first byte arrived;
          [None] while [acc] is empty. Anchors the read deadline. *)
}

let default_max_line = 8 * 1024 * 1024

let reader ?(max_line_bytes = default_max_line) fd =
  { fd; max_line = max_line_bytes; chunk = Bytes.create 65536; acc = Buffer.create 256;
    queued = []; eof = false; line_start_ms = None }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec split_last acc = function
  | [ x ] -> (List.rev acc, x)
  | x :: tl -> split_last (x :: acc) tl
  | [] -> invalid_arg "split_last"

(* Block until [r.fd] is readable or the deadline (absolute, monotonic
   Clock milliseconds) passes. EINTR retries recompute the remaining time
   from the same deadline, so signals cannot extend it. *)
let wait_readable fd deadline_ms =
  let rec go () =
    let left = (deadline_ms -. Spp_util.Clock.now_ms ()) /. 1000.0 in
    if left <= 0.0 then raise Timeout;
    match Unix.select [ fd ] [] [] left with
    | [], _, _ -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_line ?idle_timeout_ms ?read_timeout_ms r =
  (* The idle deadline is anchored at call entry: it bounds the wait for
     the *next* line to begin. Once the line's first byte is in [acc], the
     read deadline (anchored at that byte's arrival) takes over, so a
     slow-loris peer trickling one byte per idle-timeout still gets cut. *)
  let idle_deadline =
    Option.map (fun ms -> Spp_util.Clock.now_ms () +. ms) idle_timeout_ms
  in
  let check_len s = if String.length s > r.max_line then raise Line_too_long in
  (* The limit applies to the logical line, i.e. after the optional
     trailing CR is stripped — a CRLF peer gets the same effective
     capacity as an LF one. The partial-line buffer therefore tolerates
     one extra byte (the CR whose LF has not arrived yet). *)
  let check_acc () = if Buffer.length r.acc > r.max_line + 1 then raise Line_too_long in
  let rec go () =
    match r.queued with
    | l :: rest ->
      r.queued <- rest;
      Some l
    | [] ->
      if r.eof then
        if Buffer.length r.acc = 0 then None
        else begin
          let s = strip_cr (Buffer.contents r.acc) in
          Buffer.clear r.acc;
          r.line_start_ms <- None;
          check_len s;
          Some s
        end
      else begin
        (match r.line_start_ms, read_timeout_ms with
         | Some t0, Some ms -> wait_readable r.fd (t0 +. ms)
         | _ -> Option.iter (wait_readable r.fd) idle_deadline);
        fault_probe "framing.read";
        (match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | 0 -> r.eof <- true
         | n -> (
           let data = Bytes.sub_string r.chunk 0 n in
           match String.split_on_char '\n' data with
           | [ only ] ->
             Buffer.add_string r.acc only;
             check_acc ();
             if r.line_start_ms = None && Buffer.length r.acc > 0 then
               r.line_start_ms <- Some (Spp_util.Clock.now_ms ())
           | first :: rest ->
             let complete, partial = split_last [] rest in
             let first_line = strip_cr (Buffer.contents r.acc ^ first) in
             let complete = List.map strip_cr complete in
             Buffer.clear r.acc;
             Buffer.add_string r.acc partial;
             check_len first_line;
             List.iter check_len complete;
             check_acc ();
             (* A fresh partial line starts now; an empty one has no start. *)
             r.line_start_ms <-
               (if Buffer.length r.acc = 0 then None else Some (Spp_util.Clock.now_ms ()));
             r.queued <- first_line :: complete
           | [] -> assert false));
        go ()
      end
  in
  go ()

let write_line fd s =
  fault_probe "framing.write";
  let data = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      match Unix.write fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
