type address =
  | Unix_sock of string
  | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let inet_addr_of host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host))
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let sockaddr_of = function
  | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (inet_addr_of host, port))

let listen ?(backlog = 64) addr =
  let domain, sockaddr = sockaddr_of addr in
  (match addr with
   | Unix_sock path when Sys.file_exists path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | _ -> ());
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect addr =
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* ------------------------------------------------------------------ *)
(* Line reading *)

exception Line_too_long

type reader = {
  fd : Unix.file_descr;
  max_line : int;
  chunk : Bytes.t;
  acc : Buffer.t;  (** current partial line *)
  mutable queued : string list;  (** complete lines not yet handed out *)
  mutable eof : bool;
}

let default_max_line = 8 * 1024 * 1024

let reader ?(max_line_bytes = default_max_line) fd =
  { fd; max_line = max_line_bytes; chunk = Bytes.create 65536; acc = Buffer.create 256;
    queued = []; eof = false }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec split_last acc = function
  | [ x ] -> (List.rev acc, x)
  | x :: tl -> split_last (x :: acc) tl
  | [] -> invalid_arg "split_last"

let read_line r =
  let check_len s = if String.length s > r.max_line then raise Line_too_long in
  let rec go () =
    match r.queued with
    | l :: rest ->
      r.queued <- rest;
      Some (strip_cr l)
    | [] ->
      if r.eof then
        if Buffer.length r.acc = 0 then None
        else begin
          let s = Buffer.contents r.acc in
          Buffer.clear r.acc;
          Some (strip_cr s)
        end
      else begin
        (match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | 0 -> r.eof <- true
         | n -> (
           let data = Bytes.sub_string r.chunk 0 n in
           match String.split_on_char '\n' data with
           | [ only ] ->
             Buffer.add_string r.acc only;
             if Buffer.length r.acc > r.max_line then raise Line_too_long
           | first :: rest ->
             let complete, partial = split_last [] rest in
             let first_line = Buffer.contents r.acc ^ first in
             Buffer.clear r.acc;
             Buffer.add_string r.acc partial;
             check_len first_line;
             List.iter check_len complete;
             if Buffer.length r.acc > r.max_line then raise Line_too_long;
             r.queued <- first_line :: complete
           | [] -> assert false));
        go ()
      end
  in
  go ()

let write_line fd s =
  let data = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      match Unix.write fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
