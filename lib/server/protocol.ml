type request =
  | Solve of { instance : string; budget_ms : float option; algos : string list option }
  | Metrics
  | Health
  | Shutdown

type error_code = Parse | Bad_request | Bad_instance | Overloaded | Shutting_down | Internal

type solve_reply = {
  winner : string;
  source : string;
  height : string;
  time_ms : float;
  placement : string;
}

type cache_stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

type metrics_reply = {
  uptime_ms : float;
  counters : (string * int) list;
  cache : cache_stats;
  store_dir : string option;
  workers : int;
  queue_length : int;
  queue_capacity : int;
}

type response =
  | Solve_ok of solve_reply
  | Metrics_ok of metrics_reply
  | Health_ok
  | Shutdown_ok
  | Error of { code : error_code; message : string }

let error_code_to_string = function
  | Parse -> "parse"
  | Bad_request -> "bad_request"
  | Bad_instance -> "bad_instance"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_code_of_string = function
  | "parse" -> Some Parse
  | "bad_request" -> Some Bad_request
  | "bad_instance" -> Some Bad_instance
  | "overloaded" -> Some Overloaded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding *)

let encode_request = function
  | Solve { instance; budget_ms; algos } ->
    let fields =
      [ ("op", Json.String "solve"); ("instance", Json.String instance) ]
      @ (match budget_ms with Some b -> [ ("budget_ms", Json.Float b) ] | None -> [])
      @ (match algos with
         | Some names -> [ ("algos", Json.List (List.map (fun a -> Json.String a) names)) ]
         | None -> [])
    in
    Json.to_string (Json.Obj fields)
  | Metrics -> Json.to_string (Json.Obj [ ("op", Json.String "metrics") ])
  | Health -> Json.to_string (Json.Obj [ ("op", Json.String "health") ])
  | Shutdown -> Json.to_string (Json.Obj [ ("op", Json.String "shutdown") ])

let encode_response = function
  | Solve_ok r ->
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool true); ("op", Json.String "solve");
           ("winner", Json.String r.winner); ("source", Json.String r.source);
           ("height", Json.String r.height); ("ms", Json.Float r.time_ms);
           ("placement", Json.String r.placement) ])
  | Metrics_ok m ->
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool true); ("op", Json.String "metrics");
           ("uptime_ms", Json.Float m.uptime_ms);
           ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) m.counters));
           ( "cache",
             Json.Obj
               [ ("size", Json.Int m.cache.size); ("capacity", Json.Int m.cache.capacity);
                 ("hits", Json.Int m.cache.hits); ("misses", Json.Int m.cache.misses);
                 ("evictions", Json.Int m.cache.evictions) ] );
           ("store_dir", match m.store_dir with Some d -> Json.String d | None -> Json.Null);
           ("workers", Json.Int m.workers); ("queue_length", Json.Int m.queue_length);
           ("queue_capacity", Json.Int m.queue_capacity) ])
  | Health_ok ->
    Json.to_string
      (Json.Obj [ ("ok", Json.Bool true); ("op", Json.String "health"); ("status", Json.String "ok") ])
  | Shutdown_ok ->
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool true); ("op", Json.String "shutdown");
           ("status", Json.String "draining") ])
  | Error { code; message } ->
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool false); ("error", Json.String (error_code_to_string code));
           ("message", Json.String message) ])

(* ------------------------------------------------------------------ *)
(* Decoding *)

let ( let* ) r f = Result.bind r f

let require what = function Some v -> Ok v | None -> Result.Error ("missing or ill-typed " ^ what)

let optional field conv j =
  match Json.member field j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Result.Error (Printf.sprintf "ill-typed field %S" field))

let string_list j =
  match Json.get_list j with
  | None -> None
  | Some xs ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | x :: tl -> (match Json.get_string x with Some s -> go (s :: acc) tl | None -> None)
    in
    go [] xs

let decode_request line =
  match Json.of_string line with
  | Error msg -> Result.Error ("invalid JSON: " ^ msg)
  | Ok (Json.Obj _ as j) -> (
    let* op = require "field \"op\"" (Option.bind (Json.member "op" j) Json.get_string) in
    match op with
    | "solve" ->
      let* instance =
        require "field \"instance\"" (Option.bind (Json.member "instance" j) Json.get_string)
      in
      let* budget_ms = optional "budget_ms" Json.get_float j in
      let* algos = optional "algos" string_list j in
      Ok (Solve { instance; budget_ms; algos })
    | "metrics" -> Ok Metrics
    | "health" -> Ok Health
    | "shutdown" -> Ok Shutdown
    | other -> Result.Error (Printf.sprintf "unknown op %S" other))
  | Ok _ -> Result.Error "request must be a JSON object"

let decode_response line =
  match Json.of_string line with
  | Error msg -> Result.Error ("invalid JSON: " ^ msg)
  | Ok (Json.Obj _ as j) -> (
    let* ok = require "field \"ok\"" (Option.bind (Json.member "ok" j) Json.get_bool) in
    if not ok then
      let* code_s =
        require "field \"error\"" (Option.bind (Json.member "error" j) Json.get_string)
      in
      let* code = require "known error code" (error_code_of_string code_s) in
      let message =
        Option.value ~default:"" (Option.bind (Json.member "message" j) Json.get_string)
      in
      Ok (Error { code; message })
    else
      let* op = require "field \"op\"" (Option.bind (Json.member "op" j) Json.get_string) in
      match op with
      | "solve" ->
        let str f = require ("field \"" ^ f ^ "\"") (Option.bind (Json.member f j) Json.get_string) in
        let* winner = str "winner" in
        let* source = str "source" in
        let* height = str "height" in
        let* time_ms = require "field \"ms\"" (Option.bind (Json.member "ms" j) Json.get_float) in
        let* placement = str "placement" in
        Ok (Solve_ok { winner; source; height; time_ms; placement })
      | "metrics" ->
        let* uptime_ms =
          require "field \"uptime_ms\"" (Option.bind (Json.member "uptime_ms" j) Json.get_float)
        in
        let* counters_obj = require "field \"counters\"" (Json.member "counters" j) in
        let* counters =
          match counters_obj with
          | Json.Obj fields ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | (k, v) :: tl -> (
                match Json.get_int v with
                | Some n -> go ((k, n) :: acc) tl
                | None -> Result.Error "ill-typed counter value")
            in
            go [] fields
          | _ -> Result.Error "ill-typed field \"counters\""
        in
        let* cache_obj = require "field \"cache\"" (Json.member "cache" j) in
        let cint f = require ("cache field \"" ^ f ^ "\"") (Option.bind (Json.member f cache_obj) Json.get_int) in
        let* size = cint "size" in
        let* capacity = cint "capacity" in
        let* hits = cint "hits" in
        let* misses = cint "misses" in
        let* evictions = cint "evictions" in
        let* store_dir = optional "store_dir" Json.get_string j in
        let int f = require ("field \"" ^ f ^ "\"") (Option.bind (Json.member f j) Json.get_int) in
        let* workers = int "workers" in
        let* queue_length = int "queue_length" in
        let* queue_capacity = int "queue_capacity" in
        Ok
          (Metrics_ok
             { uptime_ms; counters; cache = { size; capacity; hits; misses; evictions };
               store_dir; workers; queue_length; queue_capacity })
      | "health" -> Ok Health_ok
      | "shutdown" -> Ok Shutdown_ok
      | other -> Result.Error (Printf.sprintf "unknown response op %S" other))
  | Ok _ -> Result.Error "response must be a JSON object"
