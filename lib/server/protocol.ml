type request =
  | Solve of {
      instance : string;
      budget_ms : float option;
      deadline_ms : float option;
      algos : string list option;
      trace_id : string option;
    }
  | Metrics
  | Health
  | Shutdown

type error_code =
  | Parse
  | Bad_request
  | Bad_instance
  | Overloaded
  | Wont_make_it
  | Shutting_down
  | Internal

type solve_reply = {
  winner : string;
  source : string;
  height : string;
  time_ms : float;
  placement : string;
  degraded : bool;
  lower_bound : string option;
  gap : string option;
  trace_id : string option;
  trace : Json.t option;
}

type cache_stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

type hist_reply = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;
}

type algo_reply = { wins : int; solved : int; timeouts : int; invalid : int; failed : int }

type metrics_reply = {
  uptime_ms : float;
  counters : (string * int) list;
  cache : cache_stats;
  store_dir : string option;
  workers : int;
  queue_length : int;
  queue_capacity : int;
  histograms : (string * hist_reply) list;
  algos : (string * algo_reply) list;
}

type health_reply = { uptime_s : float; cache_capacity : int }

type response =
  | Solve_ok of solve_reply
  | Metrics_ok of metrics_reply
  | Health_ok of health_reply
  | Shutdown_ok
  | Error of { code : error_code; message : string; retry_after_ms : int option }

let error_code_to_string = function
  | Parse -> "parse"
  | Bad_request -> "bad_request"
  | Bad_instance -> "bad_instance"
  | Overloaded -> "overloaded"
  | Wont_make_it -> "wont_make_it"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_code_of_string = function
  | "parse" -> Some Parse
  | "bad_request" -> Some Bad_request
  | "bad_instance" -> Some Bad_instance
  | "overloaded" -> Some Overloaded
  | "wont_make_it" -> Some Wont_make_it
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding *)

let opt_string_field name = function
  | Some s -> [ (name, Json.String s) ]
  | None -> []

let encode_request = function
  | Solve { instance; budget_ms; deadline_ms; algos; trace_id } ->
    let fields =
      [ ("op", Json.String "solve"); ("instance", Json.String instance) ]
      @ (match budget_ms with Some b -> [ ("budget_ms", Json.Float b) ] | None -> [])
      @ (match deadline_ms with Some d -> [ ("deadline_ms", Json.Float d) ] | None -> [])
      @ (match algos with
         | Some names -> [ ("algos", Json.List (List.map (fun a -> Json.String a) names)) ]
         | None -> [])
      @ opt_string_field "trace_id" trace_id
    in
    Json.to_string (Json.Obj fields)
  | Metrics -> Json.to_string (Json.Obj [ ("op", Json.String "metrics") ])
  | Health -> Json.to_string (Json.Obj [ ("op", Json.String "health") ])
  | Shutdown -> Json.to_string (Json.Obj [ ("op", Json.String "shutdown") ])

let encode_hist (h : hist_reply) =
  Json.Obj
    [ ("count", Json.Int h.count); ("sum", Json.Float h.sum); ("p50", Json.Float h.p50);
      ("p90", Json.Float h.p90); ("p99", Json.Float h.p99);
      ( "buckets",
        Json.List
          (List.map (fun (le, c) -> Json.List [ Json.Float le; Json.Int c ]) h.buckets) ) ]

let encode_algo (a : algo_reply) =
  Json.Obj
    [ ("wins", Json.Int a.wins); ("solved", Json.Int a.solved);
      ("timeouts", Json.Int a.timeouts); ("invalid", Json.Int a.invalid);
      ("failed", Json.Int a.failed) ]

let encode_response = function
  | Solve_ok r ->
    (* [degraded:false] is the wire default and is omitted, so replies
       from pre-deadline servers and post-deadline ones decode alike. *)
    Json.to_string
      (Json.Obj
         ([ ("ok", Json.Bool true); ("op", Json.String "solve");
            ("winner", Json.String r.winner); ("source", Json.String r.source);
            ("height", Json.String r.height); ("ms", Json.Float r.time_ms);
            ("placement", Json.String r.placement) ]
          @ (if r.degraded then [ ("degraded", Json.Bool true) ] else [])
          @ opt_string_field "lower_bound" r.lower_bound
          @ opt_string_field "gap" r.gap
          @ opt_string_field "trace_id" r.trace_id
          @ (match r.trace with Some t -> [ ("trace", t) ] | None -> [])))
  | Metrics_ok m ->
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool true); ("op", Json.String "metrics");
           ("uptime_ms", Json.Float m.uptime_ms);
           ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) m.counters));
           ( "cache",
             Json.Obj
               [ ("size", Json.Int m.cache.size); ("capacity", Json.Int m.cache.capacity);
                 ("hits", Json.Int m.cache.hits); ("misses", Json.Int m.cache.misses);
                 ("evictions", Json.Int m.cache.evictions) ] );
           ("store_dir", match m.store_dir with Some d -> Json.String d | None -> Json.Null);
           ("workers", Json.Int m.workers); ("queue_length", Json.Int m.queue_length);
           ("queue_capacity", Json.Int m.queue_capacity);
           ("histograms", Json.Obj (List.map (fun (k, h) -> (k, encode_hist h)) m.histograms));
           ("algos", Json.Obj (List.map (fun (k, a) -> (k, encode_algo a)) m.algos)) ])
  | Health_ok h ->
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool true); ("op", Json.String "health"); ("status", Json.String "ok");
           ("uptime_s", Json.Float h.uptime_s);
           ("cache_capacity", Json.Int h.cache_capacity) ])
  | Shutdown_ok ->
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool true); ("op", Json.String "shutdown");
           ("status", Json.String "draining") ])
  | Error { code; message; retry_after_ms } ->
    Json.to_string
      (Json.Obj
         ([ ("ok", Json.Bool false); ("error", Json.String (error_code_to_string code));
            ("message", Json.String message) ]
          @ match retry_after_ms with
            | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
            | None -> []))

(* ------------------------------------------------------------------ *)
(* Decoding *)

let ( let* ) r f = Result.bind r f

let require what = function Some v -> Ok v | None -> Result.Error ("missing or ill-typed " ^ what)

let optional field conv j =
  match Json.member field j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Result.Error (Printf.sprintf "ill-typed field %S" field))

let string_list j =
  match Json.get_list j with
  | None -> None
  | Some xs ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | x :: tl -> (match Json.get_string x with Some s -> go (s :: acc) tl | None -> None)
    in
    go [] xs

let decode_request line =
  match Json.of_string line with
  | Error msg -> Result.Error ("invalid JSON: " ^ msg)
  | Ok (Json.Obj _ as j) -> (
    let* op = require "field \"op\"" (Option.bind (Json.member "op" j) Json.get_string) in
    match op with
    | "solve" ->
      let* instance =
        require "field \"instance\"" (Option.bind (Json.member "instance" j) Json.get_string)
      in
      let* budget_ms = optional "budget_ms" Json.get_float j in
      let* deadline_ms = optional "deadline_ms" Json.get_float j in
      let* algos = optional "algos" string_list j in
      let* trace_id = optional "trace_id" Json.get_string j in
      Ok (Solve { instance; budget_ms; deadline_ms; algos; trace_id })
    | "metrics" -> Ok Metrics
    | "health" -> Ok Health
    | "shutdown" -> Ok Shutdown
    | other -> Result.Error (Printf.sprintf "unknown op %S" other))
  | Ok _ -> Result.Error "request must be a JSON object"

let int_fields what fields =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (k, v) :: tl -> (
      match Json.get_int v with
      | Some n -> go ((k, n) :: acc) tl
      | None -> Result.Error ("ill-typed " ^ what))
  in
  go [] fields

let decode_hist j =
  let int f = require ("histogram field \"" ^ f ^ "\"") (Option.bind (Json.member f j) Json.get_int) in
  let flt f = require ("histogram field \"" ^ f ^ "\"") (Option.bind (Json.member f j) Json.get_float) in
  let* count = int "count" in
  let* sum = flt "sum" in
  let* p50 = flt "p50" in
  let* p90 = flt "p90" in
  let* p99 = flt "p99" in
  let* bucket_list =
    require "histogram field \"buckets\"" (Option.bind (Json.member "buckets" j) Json.get_list)
  in
  let* buckets =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.List [ le; c ] :: tl -> (
        match (Json.get_float le, Json.get_int c) with
        | Some le, Some c -> go ((le, c) :: acc) tl
        | _ -> Result.Error "ill-typed histogram bucket")
      | _ -> Result.Error "ill-typed histogram bucket"
    in
    go [] bucket_list
  in
  Ok { count; sum; p50; p90; p99; buckets }

let decode_algo j =
  let int f = require ("algo field \"" ^ f ^ "\"") (Option.bind (Json.member f j) Json.get_int) in
  let* wins = int "wins" in
  let* solved = int "solved" in
  let* timeouts = int "timeouts" in
  let* invalid = int "invalid" in
  let* failed = int "failed" in
  Ok { wins; solved; timeouts; invalid; failed }

let decode_assoc what decode_one j =
  match j with
  | Json.Obj fields ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, v) :: tl ->
        let* x = decode_one v in
        go ((k, x) :: acc) tl
    in
    go [] fields
  | _ -> Result.Error ("ill-typed field \"" ^ what ^ "\"")

let decode_response line =
  match Json.of_string line with
  | Error msg -> Result.Error ("invalid JSON: " ^ msg)
  | Ok (Json.Obj _ as j) -> (
    let* ok = require "field \"ok\"" (Option.bind (Json.member "ok" j) Json.get_bool) in
    if not ok then
      let* code_s =
        require "field \"error\"" (Option.bind (Json.member "error" j) Json.get_string)
      in
      let* code = require "known error code" (error_code_of_string code_s) in
      let message =
        Option.value ~default:"" (Option.bind (Json.member "message" j) Json.get_string)
      in
      let* retry_after_ms = optional "retry_after_ms" Json.get_int j in
      Ok (Error { code; message; retry_after_ms })
    else
      let* op = require "field \"op\"" (Option.bind (Json.member "op" j) Json.get_string) in
      match op with
      | "solve" ->
        let str f = require ("field \"" ^ f ^ "\"") (Option.bind (Json.member f j) Json.get_string) in
        let* winner = str "winner" in
        let* source = str "source" in
        let* height = str "height" in
        let* time_ms = require "field \"ms\"" (Option.bind (Json.member "ms" j) Json.get_float) in
        let* placement = str "placement" in
        let* degraded = optional "degraded" Json.get_bool j in
        let degraded = Option.value ~default:false degraded in
        let* lower_bound = optional "lower_bound" Json.get_string j in
        let* gap = optional "gap" Json.get_string j in
        let* trace_id = optional "trace_id" Json.get_string j in
        let trace =
          match Json.member "trace" j with None | Some Json.Null -> None | Some t -> Some t
        in
        Ok
          (Solve_ok
             { winner; source; height; time_ms; placement; degraded; lower_bound; gap;
               trace_id; trace })
      | "metrics" ->
        let* uptime_ms =
          require "field \"uptime_ms\"" (Option.bind (Json.member "uptime_ms" j) Json.get_float)
        in
        let* counters_obj = require "field \"counters\"" (Json.member "counters" j) in
        let* counters =
          match counters_obj with
          | Json.Obj fields -> int_fields "counter value" fields
          | _ -> Result.Error "ill-typed field \"counters\""
        in
        let* cache_obj = require "field \"cache\"" (Json.member "cache" j) in
        let cint f = require ("cache field \"" ^ f ^ "\"") (Option.bind (Json.member f cache_obj) Json.get_int) in
        let* size = cint "size" in
        let* capacity = cint "capacity" in
        let* hits = cint "hits" in
        let* misses = cint "misses" in
        let* evictions = cint "evictions" in
        let* store_dir = optional "store_dir" Json.get_string j in
        let int f = require ("field \"" ^ f ^ "\"") (Option.bind (Json.member f j) Json.get_int) in
        let* workers = int "workers" in
        let* queue_length = int "queue_length" in
        let* queue_capacity = int "queue_capacity" in
        let* hist_obj = require "field \"histograms\"" (Json.member "histograms" j) in
        let* histograms = decode_assoc "histograms" decode_hist hist_obj in
        let* algos_obj = require "field \"algos\"" (Json.member "algos" j) in
        let* algos = decode_assoc "algos" decode_algo algos_obj in
        Ok
          (Metrics_ok
             { uptime_ms; counters; cache = { size; capacity; hits; misses; evictions };
               store_dir; workers; queue_length; queue_capacity; histograms; algos })
      | "health" ->
        let* uptime_s =
          require "field \"uptime_s\"" (Option.bind (Json.member "uptime_s" j) Json.get_float)
        in
        let* cache_capacity =
          require "field \"cache_capacity\""
            (Option.bind (Json.member "cache_capacity" j) Json.get_int)
        in
        Ok (Health_ok { uptime_s; cache_capacity })
      | "shutdown" -> Ok Shutdown_ok
      | other -> Result.Error (Printf.sprintf "unknown response op %S" other))
  | Ok _ -> Result.Error "response must be a JSON object"
