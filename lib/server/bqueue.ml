type 'a t = {
  cap : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { cap = capacity; items = Queue.create (); lock = Mutex.create ();
    nonempty = Condition.create (); closed = false }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  locked t (fun () ->
      if t.closed || Queue.length t.items >= t.cap then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      if Queue.is_empty t.items then None else Some (Queue.pop t.items))

(* [Condition] has no timed wait, so the bounded wait polls: check under
   the lock, sleep a short slice outside it. The slice is 1 ms (or the
   remainder, if shorter), so a reply arriving mid-wait is seen within
   ~1 ms — noise against the hedge delays (tens of ms) this serves. *)
let pop_within t ~timeout_ms =
  let deadline = Unix.gettimeofday () +. (Float.max 0.0 timeout_ms /. 1000.0) in
  let rec loop () =
    let taken =
      locked t (fun () ->
          if Queue.is_empty t.items then if t.closed then `Closed else `Empty
          else `Item (Queue.pop t.items))
    in
    match taken with
    | `Item x -> Some x
    | `Closed -> None
    | `Empty ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then None
      else begin
        Unix.sleepf (Float.min 0.001 left);
        loop ()
      end
  in
  loop ()

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = locked t (fun () -> t.closed)
let length t = locked t (fun () -> Queue.length t.items)
let capacity t = t.cap
