(** Bounded, closeable, domain-safe FIFO queue.

    The server's admission queue: connection handlers {!try_push} work
    items (failing immediately when the queue is full — that failure is
    what becomes the protocol's [overloaded] reply), worker domains
    {!pop} them. {!close} starts a drain: pushes are refused but queued
    items are still handed out, and once empty every popper receives
    [None] — which is how the worker pool learns to exit.

    A capacity-1 queue doubles as a one-shot mailbox (single producer,
    single consumer), which is how solve replies travel back from the
    worker to the connection handler. *)

type 'a t

(** [create ~capacity] — at most [capacity] queued items ([>= 1]).
    @raise Invalid_argument on [capacity < 1]. *)
val create : capacity:int -> 'a t

(** [try_push t x] enqueues and returns [true], or returns [false] without
    blocking when the queue is full or closed. *)
val try_push : 'a t -> 'a -> bool

(** [pop t] blocks until an item is available ([Some x]) or the queue is
    closed and drained ([None]). FIFO order. *)
val pop : 'a t -> 'a option

(** [pop_within t ~timeout_ms] is {!pop} bounded to [timeout_ms] of wall
    clock: [None] on timeout as well as on close-and-drained. The wait
    polls in ~1 ms slices (no timed condition wait exists), which is how
    the proxy's hedging loop waits "for a reply or the hedge timer,
    whichever first". *)
val pop_within : 'a t -> timeout_ms:float -> 'a option

(** [close t] refuses further pushes and wakes all blocked poppers.
    Idempotent. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
