(** Blocking client for the `spp serve` protocol.

    One connection, synchronous request/response — the shape `spp client`,
    `spp loadgen` and the test suite all use. A closed-loop load generator
    is just [connections] threads each looping {!request}.

    Every transport-level failure is a typed {!Error} (never a bare
    [Failure] or a leaked [Unix.Unix_error]), so callers can map outcomes
    to exit codes or retry policies without string-matching. {!call} adds
    bounded retries with decorrelated-jitter exponential backoff for
    one-shot use. *)

type t

(** Why a request could not be completed at the transport level. Server-
    side failures (a decoded [Error] response) are {e not} errors here —
    they are returned as values. *)
type error_kind =
  | Connect_failed  (** unreachable, refused, or no such socket *)
  | Timed_out  (** connect or reply deadline passed *)
  | Connection_closed  (** EOF where a reply was expected *)
  | Io  (** other socket-level read/write failure *)
  | Bad_reply  (** reply line did not decode as the protocol *)

(** [attempts] is how many tries {!call} made (always 1 from {!request}). *)
exception Error of { kind : error_kind; attempts : int; message : string }

val kind_to_string : error_kind -> string

(** [connect addr] opens a connection (and ignores SIGPIPE process-wide).
    [timeout_ms] bounds the connect and every subsequent {!request}'s
    reply wait. @raise Error on failure. *)
val connect : ?timeout_ms:float -> Framing.address -> t

(** [request t req] sends one request and blocks for its reply.
    [timeout_ms] overrides the connection's reply timeout for this one
    request — how a proxy bounds an upstream wait to the request's
    remaining deadline without reconnecting.
    @raise Error ([attempts = 1]) on transport failure or timeout. *)
val request : ?timeout_ms:float -> t -> Protocol.request -> Protocol.response

val close : t -> unit

(** [with_connection addr f] — connect, run [f], always close. *)
val with_connection : ?timeout_ms:float -> Framing.address -> (t -> 'a) -> 'a

val default_backoff_base_ms : float
val default_backoff_cap_ms : float

(** [backoff_ms rng ~prev_ms] draws the next retry sleep: decorrelated
    jitter, uniform in [\[base_ms, 3 × prev_ms\]] capped at [cap_ms].
    [hint_ms] (a server [retry_after_ms]) is a {e floor}: the jittered
    draw still de-synchronizes clients that all got the same hint, but
    none returns before the server asked — even when the hint exceeds
    [cap_ms]. This is the function {!call} sleeps on; exposed so other
    retry loops (the cluster proxy, tests) share one backoff policy. *)
val backoff_ms :
  ?base_ms:float ->
  ?cap_ms:float ->
  ?hint_ms:int ->
  Spp_util.Prng.t -> prev_ms:float -> float

(** [call addr req] — one-shot: fresh connection, one request, close; on
    failure, up to [retries] further attempts (total [retries + 1]), each
    on a fresh connection.

    Retried: transport errors, and [overloaded] replies (sleeping at least
    the reply's [retry_after_ms] hint). Not retried: any other decoded
    response (including other server errors — the server answered), and
    non-idempotent requests ([shutdown] is always single-attempt).

    Sleeps between attempts use decorrelated jitter: uniform in
    [\[backoff_base_ms, 3 × previous\]], capped at [backoff_cap_ms], from a
    {!Spp_util.Prng} stream ([seed] defaults to pid-and-time derived; fix
    it for reproducible tests).

    @raise Error with [attempts] = total tries when the last attempt still
    failed at the transport level. *)
val call :
  ?retries:int ->
  ?timeout_ms:float ->
  ?backoff_base_ms:float ->
  ?backoff_cap_ms:float ->
  ?seed:int ->
  Framing.address -> Protocol.request -> Protocol.response
