(** Blocking client for the `spp serve` protocol.

    One connection, synchronous request/response — the shape `spp client`,
    `spp loadgen` and the test suite all use. A closed-loop load generator
    is just [connections] threads each looping {!request}. *)

type t

(** [connect addr] opens a connection (and ignores SIGPIPE process-wide).
    @raise Unix.Unix_error when the server is unreachable. *)
val connect : Framing.address -> t

(** [request t req] sends one request and blocks for its reply.
    @raise Failure if the server closes the connection or replies with
    something that does not decode. *)
val request : t -> Protocol.request -> Protocol.response

val close : t -> unit

(** [with_connection addr f] — connect, run [f], always close. *)
val with_connection : Framing.address -> (t -> 'a) -> 'a
