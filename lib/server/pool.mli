(** Worker pool: OCaml 5 domains draining a {!Bqueue}.

    Each worker loops [Bqueue.pop]: [Some job] is handed to the job
    function (exceptions are caught and dropped — a job function that
    needs to report failure must do so through its own channel, as the
    server's does via the reply mailbox), [None] (queue closed and
    drained) makes the worker exit. All workers share whatever state the
    job function closes over — for the server that is one
    {!Spp_engine.Engine.t}, which is the whole point: its LRU, disk store
    and telemetry are mutex-protected and shared across every request. *)

type t

(** [start ~workers f q] spawns [max 1 workers] domains popping from [q].
    Returns immediately. *)
val start : workers:int -> ('a -> unit) -> 'a Bqueue.t -> t

val size : t -> int

(** [join t] blocks until every worker has exited — i.e. until the queue
    has been {!Bqueue.close}d and fully drained. *)
val join : t -> unit
