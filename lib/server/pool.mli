(** Supervised worker pool: OCaml 5 domains draining a {!Bqueue}.

    Each worker loops [Bqueue.pop]: [Some job] is handed to the job
    function, [None] (queue closed and drained) makes the worker exit.
    All workers share whatever state the job function closes over — for
    the server that is one {!Spp_engine.Engine.t}, which is the whole
    point: its LRU, disk store and telemetry are mutex-protected and
    shared across every request.

    Supervision: a job function that raises (or a [pool.job] fault from
    {!Spp_util.Fault}) kills its worker domain. A per-slot supervisor
    thread observes the death, invokes [on_crash] with the in-flight job
    (so the server can fail that job's reply mailbox instead of leaving
    its client hanging), and restarts the domain — up to [max_restarts]
    times per slot. Deaths and restarts are counted for the
    [spp_worker_deaths_total] / [spp_worker_restarts_total] metrics.

    If {e every} slot exhausts its budget the pool declares itself dead:
    it closes the queue (so new work is shed at admission) and fails each
    queued job via [on_crash] with {!Pool_dead} — degraded, but never a
    hang. *)

type t

(** Passed to [on_crash] for jobs the pool can no longer run because all
    worker slots exhausted their restart budgets. *)
exception Pool_dead

(** Default per-slot restart budget (16). *)
val default_max_restarts : int

(** [start ~workers f q] spawns [max 1 workers] supervised domains popping
    from [q]. Returns immediately.

    [on_crash job exn] runs on the supervisor thread for every job whose
    worker died mid-run (and for queued jobs of a dead pool, with
    {!Pool_dead}); exceptions it raises are swallowed. [max_restarts]
    bounds restarts per slot (default {!default_max_restarts}). *)
val start :
  ?max_restarts:int ->
  ?on_crash:('a -> exn -> unit) ->
  workers:int -> ('a -> unit) -> 'a Bqueue.t -> t

val size : t -> int

(** Worker-domain deaths observed so far. *)
val deaths : t -> int

(** Worker-domain restarts performed so far (deaths minus permanently
    retired slots). *)
val restarts : t -> int

(** [join t] blocks until every supervisor (and hence every worker) has
    exited — i.e. until the queue has been {!Bqueue.close}d and fully
    drained, or the pool died. *)
val join : t -> unit
