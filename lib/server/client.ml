type t = { fd : Unix.file_descr; reader : Framing.reader }

let connect addr =
  Signals.ignore_sigpipe ();
  let fd = Framing.connect addr in
  { fd; reader = Framing.reader fd }

let request t req =
  Framing.write_line t.fd (Protocol.encode_request req);
  match Framing.read_line t.reader with
  | None -> failwith "server closed the connection"
  | Some line -> (
    match Protocol.decode_response line with
    | Ok r -> r
    | Error msg -> failwith ("undecodable server reply: " ^ msg))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection addr f =
  let c = connect addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
