type t = { fd : Unix.file_descr; reader : Framing.reader; timeout_ms : float option }

type error_kind =
  | Connect_failed
  | Timed_out
  | Connection_closed
  | Io
  | Bad_reply

exception Error of { kind : error_kind; attempts : int; message : string }

let kind_to_string = function
  | Connect_failed -> "connect_failed"
  | Timed_out -> "timed_out"
  | Connection_closed -> "connection_closed"
  | Io -> "io"
  | Bad_reply -> "bad_reply"

let fail ?(attempts = 1) kind message = raise (Error { kind; attempts; message })

let connect ?timeout_ms addr =
  Signals.ignore_sigpipe ();
  match Framing.connect ?timeout_ms addr with
  | fd -> { fd; reader = Framing.reader fd; timeout_ms }
  | exception Framing.Timeout ->
    fail Timed_out
      (Printf.sprintf "connect to %s timed out" (Framing.address_to_string addr))
  | exception (Unix.Unix_error _ | Sys_error _) ->
    fail Connect_failed
      (Printf.sprintf "cannot connect to %s" (Framing.address_to_string addr))

let request ?timeout_ms t req =
  (match Framing.write_line t.fd (Protocol.encode_request req) with
   | () -> ()
   | exception (Unix.Unix_error _ | Sys_error _) -> fail Io "send failed");
  (* The reply wait is dominated by server-side compute, so the timeout is
     applied both to the first byte (idle) and to line completion (read). *)
  let timeout_ms = match timeout_ms with Some _ as t' -> t' | None -> t.timeout_ms in
  match
    Framing.read_line ?idle_timeout_ms:timeout_ms ?read_timeout_ms:timeout_ms
      t.reader
  with
  | None -> fail Connection_closed "server closed the connection"
  | exception Framing.Timeout -> fail Timed_out "timed out waiting for the reply"
  | exception (Unix.Unix_error _ | Sys_error _) -> fail Io "receive failed"
  | Some line -> (
    match Protocol.decode_response line with
    | Ok r -> r
    | Error msg -> fail Bad_reply ("undecodable server reply: " ^ msg))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?timeout_ms addr f =
  let c = connect ?timeout_ms addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

(* ------------------------------------------------------------------ *)
(* Retrying one-shot calls *)

let idempotent = function
  | Protocol.Solve _ | Protocol.Health | Protocol.Metrics -> true
  | Protocol.Shutdown -> false

let default_backoff_base_ms = 25.0
let default_backoff_cap_ms = 2_000.0

(* Decorrelated jitter: each sleep is uniform in [base, prev * 3], capped
   — spreads concurrent retriers instead of synchronizing them. A server
   [retry_after_ms] hint is a floor, not a replacement: the jittered draw
   still de-synchronizes retriers that all received the same hint, but
   none of them comes back before the server asked them to (the hint may
   exceed the cap — the server's word wins over the client's ceiling). *)
let backoff_ms ?(base_ms = default_backoff_base_ms) ?(cap_ms = default_backoff_cap_ms)
    ?hint_ms rng ~prev_ms =
  let s =
    Float.min cap_ms (Spp_util.Prng.float_in rng base_ms (Float.max base_ms (prev_ms *. 3.0)))
  in
  match hint_ms with Some ms -> Float.max s (float_of_int ms) | None -> s

let call ?(retries = 0) ?timeout_ms ?(backoff_base_ms = default_backoff_base_ms)
    ?(backoff_cap_ms = default_backoff_cap_ms) ?seed addr req =
  let retries = if idempotent req then max 0 retries else 0 in
  let rng =
    Spp_util.Prng.create
      (match seed with
       | Some s -> s
       | None -> Unix.getpid () lxor int_of_float (Spp_util.Clock.now_ms ()))
  in
  let sleep_for hint prev =
    let s =
      backoff_ms ~base_ms:backoff_base_ms ~cap_ms:backoff_cap_ms ?hint_ms:hint rng
        ~prev_ms:prev
    in
    Unix.sleepf (s /. 1000.0);
    s
  in
  let rec attempt n prev_sleep =
    let outcome =
      match with_connection ?timeout_ms addr (fun c -> request c req) with
      | Protocol.Error { code = Protocol.Overloaded; retry_after_ms; _ } as resp ->
        if n <= retries then `Retry retry_after_ms else `Done resp
      | resp -> `Done resp
      | exception Error { kind; message; _ } ->
        if n <= retries then `Retry None else fail ~attempts:n kind message
    in
    match outcome with
    | `Done resp -> resp
    | `Retry hint ->
      let slept = sleep_for hint prev_sleep in
      attempt (n + 1) slept
  in
  attempt 1 backoff_base_ms
