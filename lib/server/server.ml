module Engine = Spp_engine.Engine
module Telemetry = Spp_engine.Telemetry
module Lru = Spp_engine.Lru
module Io = Spp_core.Io
module Q = Spp_num.Rat
module Clock = Spp_util.Clock

type config = {
  address : Framing.address;
  workers : int;
  queue_depth : int;
  engine : Engine.t;
  default_budget_ms : float option;
  solve_workers : int option;
  max_request_bytes : int;
}

let default_max_request_bytes = Framing.default_max_line

type job = {
  parsed : Io.parsed;
  budget_ms : float option;
  algos : string list option;
  reply : Protocol.response Bqueue.t;  (* capacity-1 mailbox *)
}

type conn = { fd : Unix.file_descr }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  queue : job Bqueue.t;
  stopping : bool Atomic.t;
  lock : Mutex.t;  (* guards conns and threads *)
  mutable conns : conn list;
  mutable threads : Thread.t list;
  pool : Pool.t;
  started_ms : float;
  mutable acceptor : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Request handling *)

let source_to_string = function
  | Engine.Computed -> "computed"
  | Engine.Memory_cache -> "cache.memory"
  | Engine.Disk_cache -> "cache.disk"

(* Runs on a worker domain; must never raise (the reply mailbox is the
   only failure channel the connection thread watches). *)
let process cfg (job : job) =
  let resp =
    match
      Engine.solve ?budget_ms:job.budget_ms ?algos:job.algos ?workers:cfg.solve_workers
        cfg.engine job.parsed
    with
    | r ->
      Protocol.Solve_ok
        { winner = r.Engine.winner; source = source_to_string r.Engine.source;
          height = Q.to_string r.Engine.height; time_ms = r.Engine.time_ms;
          placement = Io.placement_to_string r.Engine.placement }
    | exception Invalid_argument msg ->
      Protocol.Error { code = Protocol.Bad_request; message = msg }
    | exception e -> Protocol.Error { code = Protocol.Internal; message = Printexc.to_string e }
  in
  ignore (Bqueue.try_push job.reply resp)

let stop t = Atomic.set t.stopping true

let metrics t =
  let s = Engine.cache_stats t.cfg.engine in
  Protocol.Metrics_ok
    { uptime_ms = Clock.elapsed_ms t.started_ms;
      counters = Telemetry.counters (Engine.telemetry t.cfg.engine);
      cache =
        { size = s.Lru.size; capacity = Engine.cache_capacity t.cfg.engine; hits = s.Lru.hits;
          misses = s.Lru.misses; evictions = s.Lru.evictions };
      store_dir = Engine.store_dir t.cfg.engine; workers = t.cfg.workers;
      queue_length = Bqueue.length t.queue; queue_capacity = Bqueue.capacity t.queue }

let respond t line =
  match Protocol.decode_request line with
  | Error msg -> Protocol.Error { code = Protocol.Parse; message = msg }
  | Ok Protocol.Health -> Protocol.Health_ok
  | Ok Protocol.Metrics -> metrics t
  | Ok Protocol.Shutdown ->
    stop t;
    Protocol.Shutdown_ok
  | Ok (Protocol.Solve { instance; budget_ms; algos }) ->
    if Atomic.get t.stopping then
      Protocol.Error { code = Protocol.Shutting_down; message = "server is draining" }
    else (
      match Io.parse_string instance with
      | exception Failure msg -> Protocol.Error { code = Protocol.Bad_instance; message = msg }
      | parsed ->
        let budget_ms =
          match budget_ms with Some _ -> budget_ms | None -> t.cfg.default_budget_ms
        in
        let reply = Bqueue.create ~capacity:1 in
        if not (Bqueue.try_push t.queue { parsed; budget_ms; algos; reply }) then
          Protocol.Error
            { code = Protocol.Overloaded;
              message =
                Printf.sprintf "admission queue full (depth %d)" (Bqueue.capacity t.queue) }
        else (
          match Bqueue.pop reply with
          | Some r -> r
          | None -> Protocol.Error { code = Protocol.Internal; message = "worker pool closed" }))

(* ------------------------------------------------------------------ *)
(* Connections *)

let unregister t conn =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.lock

let serve_conn t conn =
  let reader = Framing.reader ~max_line_bytes:t.cfg.max_request_bytes conn.fd in
  let send resp =
    try
      Framing.write_line conn.fd (Protocol.encode_response resp);
      true
    with Unix.Unix_error _ | Sys_error _ -> false
  in
  let rec loop () =
    match Framing.read_line reader with
    | None -> ()
    | exception Framing.Line_too_long ->
      ignore
        (send
           (Protocol.Error
              { code = Protocol.Parse;
                message =
                  Printf.sprintf "request exceeds %d bytes" t.cfg.max_request_bytes }))
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
    | Some line when String.trim line = "" -> if not (Atomic.get t.stopping) then loop ()
    | Some line ->
      let resp = respond t line in
      let written = send resp in
      (* After a drain began, finish this (in-flight) reply but take no
         further requests from the connection. *)
      if written && not (Atomic.get t.stopping) then loop ()
  in
  (try loop () with _ -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister t conn

(* ------------------------------------------------------------------ *)
(* Accepting and shutdown *)

let accept_loop t =
  let fd = t.listen_fd in
  Unix.set_nonblock fd;
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ fd ] [] [] 0.05 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ :: _, _, _ -> (
         match Unix.accept ~cloexec:true fd with
         | exception
             Unix.Unix_error
               ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
           ()
         | cfd, _ ->
           if Atomic.get t.stopping then (try Unix.close cfd with Unix.Unix_error _ -> ())
           else begin
             let conn = { fd = cfd } in
             Mutex.lock t.lock;
             t.conns <- conn :: t.conns;
             t.threads <- Thread.create (fun () -> serve_conn t conn) () :: t.threads;
             Mutex.unlock t.lock
           end));
      loop ()
    end
  in
  loop ();
  (* Drain. New connections first: close the listener (and unlink the
     socket path so clients get a clean "no such server"). *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
   | Framing.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | Framing.Tcp _ -> ());
  (* Wake idle connection threads blocked in read: shutting down the
     receive side delivers EOF without touching replies still being
     written for in-flight requests. *)
  Mutex.lock t.lock;
  let conns = t.conns in
  Mutex.unlock t.lock;
  List.iter
    (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  (* In-flight requests finish on the still-running worker pool; their
     connection threads write the replies and exit. *)
  Mutex.lock t.lock;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.lock;
  List.iter Thread.join threads;
  (* Nothing can enqueue any more: let the workers drain out and exit. *)
  Bqueue.close t.queue;
  Pool.join t.pool

let start cfg =
  Signals.ignore_sigpipe ();
  let listen_fd = Framing.listen cfg.address in
  let queue = Bqueue.create ~capacity:cfg.queue_depth in
  let pool = Pool.start ~workers:cfg.workers (process cfg) queue in
  let t =
    { cfg; listen_fd; queue; stopping = Atomic.make false; lock = Mutex.create (); conns = [];
      threads = []; pool; started_ms = Clock.now_ms (); acceptor = None }
  in
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t = match t.acceptor with Some th -> Thread.join th | None -> ()
