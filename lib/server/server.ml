module Engine = Spp_engine.Engine
module Telemetry = Spp_engine.Telemetry
module Lru = Spp_engine.Lru
module Io = Spp_core.Io
module Q = Spp_num.Rat
module Clock = Spp_util.Clock
module Metrics = Spp_obs.Metrics
module Trace = Spp_obs.Trace
module Log = Spp_obs.Log
module Field = Spp_obs.Field

type config = {
  address : Framing.address;
  workers : int;
  queue_depth : int;
  engine : Engine.t;
  default_budget_ms : float option;
  solve_workers : int option;
  max_request_bytes : int;
  slow_ms : float option;
  idle_timeout_ms : float option;
  read_timeout_ms : float option;
  retry_after_ms : int;
  max_worker_restarts : int option;
  deadline_floor_ms : float;
}

let default_max_request_bytes = Framing.default_max_line
let default_retry_after_ms = 100
let default_deadline_floor_ms = 5.0

type job = {
  parsed : Io.parsed;
  budget_ms : float option;
  deadline : Spp_util.Deadline.t option;
  algos : string list option;
  reply : Protocol.response Bqueue.t;  (* capacity-1 mailbox *)
  trace : Trace.t option;
  wants_trace : bool;
      (* the client sent a trace_id — embed the span tree in the reply
         (a slow-log/debug trace alone stays server-side) *)
  queue_span : Trace.span option;
  enqueued_ms : float;
}

type conn = { fd : Unix.file_descr }

(* Handles registered once at [start]; every request touches these, so
   they must not go through the registry's name lookup on the hot path. *)
type instruments = {
  reg : Metrics.t;
  m_shed : Metrics.counter;
  m_inflight : Metrics.gauge;
  m_connections : Metrics.counter;
  m_bytes_in : Metrics.counter;
  m_bytes_out : Metrics.counter;
  m_request_ms : Metrics.histogram;
  m_queue_wait_ms : Metrics.histogram;
  m_request_bytes : Metrics.histogram;
  m_response_bytes : Metrics.histogram;
  m_reaped : Metrics.counter;
  m_degraded : Metrics.counter;
  m_deadline_admission : Metrics.counter;
  m_deadline_dispatch : Metrics.counter;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  queue : job Bqueue.t;
  stopping : bool Atomic.t;
  lock : Mutex.t;  (* guards conns and threads *)
  mutable conns : conn list;
  mutable threads : Thread.t list;
  pool : Pool.t;
  started_ms : float;
  mutable acceptor : Thread.t option;
  mx : instruments;
}

(* ------------------------------------------------------------------ *)
(* Request handling *)

let source_to_string = function
  | Engine.Computed -> "computed"
  | Engine.Memory_cache -> "cache.memory"
  | Engine.Disk_cache -> "cache.disk"

let count_request mx op =
  Metrics.incr
    (Metrics.counter mx.reg ~help:"Requests received by op" ~labels:[ ("op", op) ]
       "spp_requests_total")

(* Runs on a worker domain; must never raise (the reply mailbox is the
   only failure channel the connection thread watches). *)
let process cfg mx (job : job) =
  (match (job.trace, job.queue_span) with
   | Some tr, Some s -> Trace.finish tr s
   | _ -> ());
  Metrics.observe mx.m_queue_wait_ms (Clock.elapsed_ms job.enqueued_ms);
  (* Queue wait was charged against the propagated deadline: re-check at
     dispatch, so a request that aged out while queued is turned away
     here instead of burning a worker on an answer nobody is waiting
     for. The engine budget is then capped by whatever remains. *)
  let wont_make_it =
    match job.deadline with
    | Some d when Spp_util.Deadline.expired ~floor_ms:cfg.deadline_floor_ms d ->
      Metrics.incr mx.m_deadline_dispatch;
      true
    | Some _ | None -> false
  in
  let resp =
    if wont_make_it then
      Protocol.Error
        { code = Protocol.Wont_make_it;
          message = "deadline expired while queued";
          retry_after_ms = Some cfg.retry_after_ms }
    else begin
      let budget_ms =
        match (job.budget_ms, job.deadline) with
        | b, None -> b
        | None, Some d -> Some (Spp_util.Deadline.remaining_ms d)
        | Some b, Some d -> Some (Float.min b (Spp_util.Deadline.remaining_ms d))
      in
      match
        Engine.solve ?budget_ms ?algos:job.algos ?workers:cfg.solve_workers
          ?trace:job.trace cfg.engine job.parsed
      with
      | r ->
        (* The reply-embedded tree is serialised here, after the engine
           spans closed but before reply.write and the root close — those
           belong to the requester's side of the timeline (the proxy's
           upstream span covers them). to_json renders open spans without
           an "ms" field, so the open root is fine. *)
        let trace =
          if job.wants_trace then
            Option.bind job.trace (fun tr ->
                Result.to_option (Json.of_string (Trace.to_json tr)))
          else None
        in
        if r.Engine.degraded then Metrics.incr mx.m_degraded;
        Protocol.Solve_ok
          { winner = r.Engine.winner; source = source_to_string r.Engine.source;
            height = Q.to_string r.Engine.height; time_ms = r.Engine.time_ms;
            placement = Io.placement_to_string r.Engine.placement;
            degraded = r.Engine.degraded;
            lower_bound = Some (Q.to_string r.Engine.lower_bound);
            gap = Some (Q.to_string r.Engine.gap);
            trace_id = Option.map Trace.id job.trace; trace }
      | exception Invalid_argument msg ->
        Protocol.Error { code = Protocol.Bad_request; message = msg; retry_after_ms = None }
      | exception Spp_util.Fault.Injected point ->
        Protocol.Error
          { code = Protocol.Internal; message = "fault injected: " ^ point;
            retry_after_ms = None }
      | exception e ->
        Protocol.Error
          { code = Protocol.Internal; message = Printexc.to_string e; retry_after_ms = None }
    end
  in
  ignore (Bqueue.try_push job.reply resp)

let stop t = Atomic.set t.stopping true

let histograms_of reg =
  List.filter_map
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.Histogram h when s.labels = [] ->
        Some
          ( s.name,
            { Protocol.count = h.Metrics.total; sum = h.Metrics.sum;
              p50 = Metrics.hist_quantile h 0.5; p90 = Metrics.hist_quantile h 0.9;
              p99 = Metrics.hist_quantile h 0.99; buckets = h.Metrics.buckets } )
      | _ -> None)
    (Metrics.snapshot reg)

let algos_of reg =
  let outcomes = Metrics.labeled_counters reg "spp_algo_outcomes_total" in
  let wins = Metrics.labeled_counters reg "spp_algo_wins_total" in
  let algo_of labels = List.assoc_opt "algo" labels in
  let names =
    List.sort_uniq compare (List.filter_map (fun (ls, _) -> algo_of ls) (outcomes @ wins))
  in
  List.map
    (fun name ->
      let sum_where pred rows =
        List.fold_left (fun acc (ls, v) -> if pred ls then acc + v else acc) 0 rows
      in
      let mine ls = algo_of ls = Some name in
      let outcome o ls = mine ls && List.assoc_opt "outcome" ls = Some o in
      ( name,
        { Protocol.wins = sum_where mine wins;
          solved = sum_where (outcome "solved") outcomes;
          timeouts = sum_where (outcome "timeout") outcomes;
          invalid = sum_where (outcome "invalid") outcomes;
          failed = sum_where (outcome "failed") outcomes } ))
    names

let metrics t =
  let s = Engine.cache_stats t.cfg.engine in
  Protocol.Metrics_ok
    { uptime_ms = Clock.elapsed_ms t.started_ms;
      counters = Telemetry.counters (Engine.telemetry t.cfg.engine);
      cache =
        { size = s.Lru.size; capacity = Engine.cache_capacity t.cfg.engine; hits = s.Lru.hits;
          misses = s.Lru.misses; evictions = s.Lru.evictions };
      store_dir = Engine.store_dir t.cfg.engine; workers = t.cfg.workers;
      queue_length = Bqueue.length t.queue; queue_capacity = Bqueue.capacity t.queue;
      histograms = histograms_of t.mx.reg; algos = algos_of t.mx.reg }

let health t =
  Protocol.Health_ok
    { uptime_s = Clock.elapsed_ms t.started_ms /. 1000.0;
      cache_capacity = Engine.cache_capacity t.cfg.engine }

(* [respond] returns the request's trace alongside the response so the
   connection thread can span the reply write and run the slow-log check
   after the bytes are actually on the wire. *)
let respond t line =
  match Protocol.decode_request line with
  | Error msg ->
    count_request t.mx "invalid";
    (Protocol.Error { code = Protocol.Parse; message = msg; retry_after_ms = None }, None)
  | Ok Protocol.Health ->
    count_request t.mx "health";
    (health t, None)
  | Ok Protocol.Metrics ->
    count_request t.mx "metrics";
    (metrics t, None)
  | Ok Protocol.Shutdown ->
    count_request t.mx "shutdown";
    Log.info "shutdown requested" [];
    stop t;
    (Protocol.Shutdown_ok, None)
  | Ok (Protocol.Solve { instance; budget_ms; deadline_ms; algos; trace_id }) ->
    count_request t.mx "solve";
    (* Pin the propagated deadline to this host's clock at receipt:
       everything from here on — parse, queue wait, dispatch — is this
       hop's elapsed time and counts against it. *)
    let deadline = Spp_util.Deadline.of_request deadline_ms in
    let trace =
      if trace_id <> None || t.cfg.slow_ms <> None || Log.enabled Log.Debug then
        Some (Trace.create ?id:trace_id ~name:"request" ())
      else None
    in
    if Atomic.get t.stopping then
      ( Protocol.Error
          { code = Protocol.Shutting_down; message = "server is draining";
            retry_after_ms = None },
        trace )
    else if
      match deadline with
      | Some d -> Spp_util.Deadline.expired ~floor_ms:t.cfg.deadline_floor_ms d
      | None -> false
    then begin
      (* Fast-fail at admission: below the floor the answer cannot
         arrive in time, so shedding now is strictly better than
         queueing — the caller learns immediately and capacity stays
         with requests that can still make it. *)
      Metrics.incr t.mx.m_deadline_admission;
      ( Protocol.Error
          { code = Protocol.Wont_make_it;
            message =
              Printf.sprintf "remaining deadline below floor (%.0f ms)"
                t.cfg.deadline_floor_ms;
            retry_after_ms = Some t.cfg.retry_after_ms },
        trace )
    end
    else (
      match Io.parse_string instance with
      | exception Failure msg ->
        ( Protocol.Error
            { code = Protocol.Bad_instance; message = msg; retry_after_ms = None },
          trace )
      | parsed ->
        let budget_ms =
          match budget_ms with Some _ -> budget_ms | None -> t.cfg.default_budget_ms
        in
        let reply = Bqueue.create ~capacity:1 in
        let queue_span =
          Option.map (fun tr -> Trace.span tr ~parent:(Trace.root tr) "queue.wait") trace
        in
        Metrics.gauge_add t.mx.m_inflight 1.0;
        let resp =
          if
            not
              (Bqueue.try_push t.queue
                 { parsed; budget_ms; deadline; algos; reply; trace;
                   wants_trace = trace_id <> None;
                   queue_span; enqueued_ms = Clock.now_ms () })
          then begin
            Metrics.incr t.mx.m_shed;
            (match (trace, queue_span) with
             | Some tr, Some s ->
               Trace.finish ~fields:[ ("outcome", Field.String "shed") ] tr s
             | _ -> ());
            if Bqueue.is_closed t.queue then
              (* The pool died (every slot out of restart budget): shed
                 with a non-retryable error, not a misleading "queue full". *)
              Protocol.Error
                { code = Protocol.Internal; message = "worker pool closed";
                  retry_after_ms = None }
            else
              Protocol.Error
                { code = Protocol.Overloaded;
                  message =
                    Printf.sprintf "admission queue full (depth %d)" (Bqueue.capacity t.queue);
                  retry_after_ms = Some t.cfg.retry_after_ms }
          end
          else (
            match Bqueue.pop reply with
            | Some r -> r
            | None ->
              Protocol.Error
                { code = Protocol.Internal; message = "worker pool closed";
                  retry_after_ms = None })
        in
        Metrics.gauge_add t.mx.m_inflight (-1.0);
        (resp, trace))

(* ------------------------------------------------------------------ *)
(* Connections *)

let unregister t conn =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.lock

let finish_trace t trace =
  Option.iter
    (fun tr ->
      Trace.close tr;
      let total = Trace.total_ms tr in
      match t.cfg.slow_ms with
      | Some thr when total >= thr ->
        Log.warn "slow request"
          [ ("trace_id", Field.String (Trace.id tr)); ("ms", Field.Float total);
            ("trace", Field.String (Trace.to_json tr)) ]
      | _ ->
        if Log.enabled Log.Debug then
          Log.debug "request"
            [ ("trace_id", Field.String (Trace.id tr)); ("ms", Field.Float total) ])
    trace

let serve_conn t conn =
  Metrics.incr t.mx.m_connections;
  let reader = Framing.reader ~max_line_bytes:t.cfg.max_request_bytes conn.fd in
  let send ?trace resp =
    let line = Protocol.encode_response resp in
    let span =
      Option.map
        (fun tr -> (tr, Trace.span tr ~parent:(Trace.root tr) "reply.write"))
        trace
    in
    let ok =
      try
        Framing.write_line conn.fd line;
        true
      with Unix.Unix_error _ | Sys_error _ -> false
    in
    Option.iter
      (fun (tr, s) ->
        Trace.finish ~fields:[ ("bytes", Field.Int (String.length line + 1)) ] tr s)
      span;
    Metrics.incr ~by:(String.length line + 1) t.mx.m_bytes_out;
    Metrics.observe t.mx.m_response_bytes (float_of_int (String.length line + 1));
    ok
  in
  let rec loop () =
    match
      Framing.read_line ?idle_timeout_ms:t.cfg.idle_timeout_ms
        ?read_timeout_ms:t.cfg.read_timeout_ms reader
    with
    | None -> ()
    | exception Framing.Timeout ->
      (* Idle too long or trickling a request too slowly: reap. *)
      Metrics.incr t.mx.m_reaped;
      Log.info "connection reaped" []
    | exception Framing.Line_too_long ->
      ignore
        (send
           (Protocol.Error
              { code = Protocol.Parse;
                message =
                  Printf.sprintf "request exceeds %d bytes" t.cfg.max_request_bytes;
                retry_after_ms = None }))
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
    | Some line when String.trim line = "" -> if not (Atomic.get t.stopping) then loop ()
    | Some line ->
      Metrics.incr ~by:(String.length line + 1) t.mx.m_bytes_in;
      Metrics.observe t.mx.m_request_bytes (float_of_int (String.length line + 1));
      let t0 = Clock.now_ms () in
      let resp, trace = respond t line in
      let written = send ?trace resp in
      finish_trace t trace;
      Metrics.observe t.mx.m_request_ms (Clock.elapsed_ms t0);
      (* After a drain began, finish this (in-flight) reply but take no
         further requests from the connection. *)
      if written && not (Atomic.get t.stopping) then loop ()
  in
  (try loop () with _ -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister t conn

(* ------------------------------------------------------------------ *)
(* Accepting and shutdown *)

let accept_loop t =
  let fd = t.listen_fd in
  Unix.set_nonblock fd;
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ fd ] [] [] 0.05 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ :: _, _, _ -> (
         match Unix.accept ~cloexec:true fd with
         | exception
             Unix.Unix_error
               ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
           ()
         | cfd, _ ->
           if Atomic.get t.stopping then (try Unix.close cfd with Unix.Unix_error _ -> ())
           else begin
             let conn = { fd = cfd } in
             Mutex.lock t.lock;
             t.conns <- conn :: t.conns;
             t.threads <- Thread.create (fun () -> serve_conn t conn) () :: t.threads;
             Mutex.unlock t.lock
           end));
      loop ()
    end
  in
  loop ();
  (* Drain. New connections first: close the listener (and unlink the
     socket path so clients get a clean "no such server"). *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
   | Framing.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | Framing.Tcp _ -> ());
  (* Wake idle connection threads blocked in read: shutting down the
     receive side delivers EOF without touching replies still being
     written for in-flight requests. *)
  Mutex.lock t.lock;
  let conns = t.conns in
  Mutex.unlock t.lock;
  List.iter
    (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  (* In-flight requests finish on the still-running worker pool; their
     connection threads write the replies and exit. *)
  Mutex.lock t.lock;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.lock;
  List.iter Thread.join threads;
  (* Nothing can enqueue any more: let the workers drain out and exit. *)
  Bqueue.close t.queue;
  Pool.join t.pool;
  Log.info "server drained" []

let instruments reg queue =
  Metrics.gauge_fn reg ~help:"Jobs waiting in the admission queue" "spp_queue_depth"
    (fun () -> float_of_int (Bqueue.length queue));
  { reg;
    m_shed =
      Metrics.counter reg ~help:"Solve requests refused because the queue was full"
        "spp_requests_shed_total";
    m_inflight =
      Metrics.gauge reg ~help:"Solve requests admitted and not yet answered"
        "spp_inflight_requests";
    m_connections = Metrics.counter reg ~help:"Client connections accepted" "spp_connections_total";
    m_bytes_in = Metrics.counter reg ~help:"Request bytes read" "spp_bytes_read_total";
    m_bytes_out = Metrics.counter reg ~help:"Response bytes written" "spp_bytes_written_total";
    m_request_ms =
      Metrics.histogram reg ~help:"Wall-clock per request, receipt to reply (ms)"
        "spp_request_ms";
    m_queue_wait_ms =
      Metrics.histogram reg ~help:"Time jobs spent in the admission queue (ms)"
        "spp_queue_wait_ms";
    m_request_bytes =
      Metrics.histogram reg ~help:"Request line sizes (bytes)"
        ~buckets:Metrics.default_size_buckets "spp_request_bytes";
    m_response_bytes =
      Metrics.histogram reg ~help:"Response line sizes (bytes)"
        ~buckets:Metrics.default_size_buckets "spp_response_bytes";
    m_reaped =
      Metrics.counter reg ~help:"Connections closed for idling or trickling past a deadline"
        "spp_connections_reaped_total";
    m_degraded =
      Metrics.counter reg ~help:"Solve replies answered with a degraded (anytime) packing"
        "spp_degraded_replies_total";
    m_deadline_admission =
      Metrics.counter reg ~help:"Requests fast-failed because the propagated deadline ran out"
        ~labels:[ ("stage", "admission") ] "spp_deadline_rejects_total";
    m_deadline_dispatch =
      Metrics.counter reg ~help:"Requests fast-failed because the propagated deadline ran out"
        ~labels:[ ("stage", "dispatch") ] "spp_deadline_rejects_total" }

let start cfg =
  Signals.ignore_sigpipe ();
  let listen_fd = Framing.listen cfg.address in
  let queue = Bqueue.create ~capacity:cfg.queue_depth in
  let reg = Telemetry.metrics (Engine.telemetry cfg.engine) in
  let mx = instruments reg queue in
  (* A worker that dies mid-job must still answer that job's client: the
     supervisor fails the reply mailbox with a structured internal error. *)
  let on_crash (job : job) exn =
    let message =
      match exn with
      | Spp_util.Fault.Injected point -> "worker crashed: fault injected: " ^ point
      | Pool.Pool_dead -> "worker pool dead: restart budget exhausted"
      | e -> "worker crashed: " ^ Printexc.to_string e
    in
    ignore
      (Bqueue.try_push job.reply
         (Protocol.Error { code = Protocol.Internal; message; retry_after_ms = None }))
  in
  let pool =
    Pool.start ?max_restarts:cfg.max_worker_restarts ~on_crash ~workers:cfg.workers
      (process cfg mx) queue
  in
  Metrics.counter_fn reg ~help:"Worker domain deaths observed by the supervisor"
    "spp_worker_deaths_total" (fun () -> Pool.deaths pool);
  Metrics.counter_fn reg ~help:"Worker domain restarts performed by the supervisor"
    "spp_worker_restarts_total" (fun () -> Pool.restarts pool);
  let t =
    { cfg; listen_fd; queue; stopping = Atomic.make false; lock = Mutex.create (); conns = [];
      threads = []; pool; started_ms = Clock.now_ms (); acceptor = None; mx }
  in
  Metrics.gauge_fn reg ~help:"Seconds since the server started" "spp_uptime_seconds"
    (fun () -> Clock.elapsed_ms t.started_ms /. 1000.0);
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  Log.info "server listening"
    [ ("address", Field.String (Framing.address_to_string cfg.address));
      ("workers", Field.Int cfg.workers); ("queue_depth", Field.Int cfg.queue_depth) ];
  t

let wait t = match t.acceptor with Some th -> Thread.join th | None -> ()
