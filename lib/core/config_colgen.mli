(** Column generation for the configuration LP (Gilmore–Gomory pricing).

    {!Config_lp.solve} enumerates every configuration up front — fine for
    the paper's constant K but exponential in 1/K. This solver instead
    grows a restricted configuration pool: solve the restricted LP exactly,
    read the duals, and for each phase price a new configuration with a
    bounded knapsack (capacity = the strip, item values = accumulated
    covering duals), repeating until no column has negative reduced cost.

    Pricing values pass through floats (knapsack DP), so termination is
    declared at a small tolerance; on every instance in the test suite the
    result coincides exactly with full enumeration, and the final answer is
    always the exact optimum of the {e restricted} LP (a true upper bound on
    nothing / lower bound on the integral optimum, like the full LP).

    Widths must share a common denominator [<= max_denominator] (they do by
    construction for column-quantised instances, where it is K).

    The restricted LP is {e warm-started} at two levels. Within a solve,
    one {!Spp_lp.Simplex.Exact.Restricted} master persists across pricing
    rounds: priced columns are appended to the incumbent optimal tableau
    and simplex continues from the current basis, instead of rebuilding and
    re-solving the restricted LP every round. Across solves, an optional
    {!warm} pool remembers each converged configuration pool keyed by width
    signature, so a later solve over the same widths starts with the
    columns the previous one had to generate — observable as collapsed
    [spp_colgen_rounds_total] / pivot counts. *)

(** Cross-call warm-start state: converged configuration pools keyed by
    width signature. Safe to reuse across any sequence of solves — entries
    only seed the initial pool, never bypass pricing, so results are
    identical LP optima either way. Not domain-safe; share per worker. *)
type warm

(** A fresh, empty warm-start pool. *)
val warm_start : unit -> warm

(** [solve ?max_rounds ?max_denominator ?warm inst] returns the same record
    as {!Config_lp.solve}, with [num_configs] the size of the generated
    pool. [cancel] (default [Spp_util.Cancel.never]) is polled before every
    pricing round; a tripped token aborts with [Spp_util.Cancel.Cancelled].
    [warm] seeds the configuration pool from previous solves and stores the
    converged pool back (see {!warm}).
    @raise Failure when widths have no common denominator below
    [max_denominator] (default 100_000) or [max_rounds] (default 200) is
    exhausted before convergence. *)
val solve :
  ?cancel:Spp_util.Cancel.t ->
  ?max_rounds:int ->
  ?max_denominator:int ->
  ?warm:warm ->
  Instance.Release.t ->
  Config_lp.solved
