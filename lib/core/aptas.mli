(** Algorithm 2: the asymptotic PTAS for strip packing with release times
    (Theorem 3.5).

    Pipeline, with ε' = ε/3, R = ⌈1/ε'⌉, W = ⌈1/ε'⌉·K·(R+1):
    + reduce [P] to [P(R)] (release rounding, Lemma 3.1, cost ≤ 1+ε');
    + reduce [P(R)] to [P(R,W)] (width grouping, Lemma 3.2, cost ≤ 1+ε');
    + solve the configuration LP exactly (Lemma 3.3; a basic optimum has at
      most (W+1)(R+1) nonzero occurrences);
    + round the fractional solution to an integral packing by greedy column
      filling (Lemma 3.4; additive loss ≤ number of occurrences).

    The result packs the {e original} rectangles (reductions only enlarge
    widths and releases, so positions transfer verbatim) and carries the
    certified height accounting used by tests:
    [height <= fractional_height + occurrences] and
    [fractional_height <= (1+ε')²·OPT_f(P)], hence
    [lower_bound = fractional_height/(1+ε')² <= OPT(P)]. *)

type result = {
  placement : Spp_geom.Placement.t;  (** integral packing of the original instance *)
  height : Spp_num.Rat.t;
  fractional_height : Spp_num.Rat.t;  (** [%R +] LP optimum on P(R,W) *)
  lower_bound : Spp_num.Rat.t;  (** certified lower bound on OPT of P *)
  occurrences : int;  (** nonzero configuration occurrences used *)
  max_occurrences : int;  (** the (W+1)(R+1) bound of Lemma 3.3 *)
  num_configs : int;
  num_widths : int;  (** distinct widths after grouping (≤ W) *)
  num_phases : int;  (** phases in the LP (≤ R+2) *)
  r_param : int;  (** R *)
  w_param : int;  (** W *)
  fallback_rects : int;  (** rectangles placed by the NFDH safety net (0 in
                             every observed run; nonzero would indicate a
                             covering-argument violation) *)
}

(** [solve ~epsilon inst] runs the full pipeline. [solver] picks how the
    configuration LP is solved: [`Enumerate] (default; {!Config_lp}, all
    configurations up front) or [`Column_generation] ({!Config_colgen};
    scales to larger K by pricing configurations on demand). [cancel]
    (default [Spp_util.Cancel.never]) is polled between pipeline stages
    (after release rounding, after width grouping, after the LP), inside
    column generation, and per occurrence during the integral rounding; a
    tripped token aborts with [Spp_util.Cancel.Cancelled]. [warm] (used
    only by [`Column_generation]) carries a {!Config_colgen.warm} pool
    across calls, warm-starting the restricted LP with previously priced
    configurations.
    @raise Invalid_argument if [epsilon <= 0].
    @raise Failure if the configuration count exceeds [max_configs]
    (default 200_000) under [`Enumerate] — choose a larger ε, a smaller K,
    or [`Column_generation]. *)
val solve :
  ?cancel:Spp_util.Cancel.t ->
  ?max_configs:int ->
  ?solver:[ `Enumerate | `Column_generation ] ->
  ?warm:Config_colgen.warm ->
  epsilon:Spp_num.Rat.t ->
  Instance.Release.t ->
  result

(** [strip ~epsilon ~k rects] — the degenerate single-release case: a
    Kenyon–Rémila-style APTAS for {e plain} strip packing (the ancestor
    result the paper's Section 3 generalises; all releases 0 makes
    Lemma 3.1 a no-op and collapses the LP to one phase). Same width
    assumption ([w ∈ [1/k, 1]]) and height cap ([h <= 1]) as [solve].
    @raise Invalid_argument on violated assumptions or [epsilon <= 0]. *)
val strip :
  ?max_configs:int ->
  ?solver:[ `Enumerate | `Column_generation ] ->
  epsilon:Spp_num.Rat.t ->
  k:int ->
  Spp_geom.Rect.t list ->
  result
