module Q = Spp_num.Rat
module B = Spp_num.Bigint
module Rect = Spp_geom.Rect
module Release = Instance.Release
module Model = Spp_lp.Model
module Simplex = Spp_lp.Simplex
module Knapsack = Spp_pack.Knapsack

(* Build and exactly solve the restricted LP over the given configuration
   pool; returns (objective, solution, packing duals by phase, covering
   duals by (k, i)). Mirrors Config_lp.solve's constraint structure. *)
let solve_restricted widths boundaries demand configs =
  let np = Array.length boundaries in
  let nw = Array.length widths in
  let nq = Array.length configs in
  let model = Model.create () in
  let var = Array.make_matrix nq np (-1) in
  for q = 0 to nq - 1 do
    for j = 0 to np - 1 do
      var.(q).(j) <- Model.add_var model ~name:(Printf.sprintf "x_%d_%d" q j)
    done
  done;
  Model.set_objective model (List.init nq (fun q -> (var.(q).(np - 1), Q.one)));
  (* Constraint bookkeeping: remember each row's role to map duals back. *)
  let row_roles = ref [] in
  for j = 0 to np - 2 do
    let cap = Q.sub boundaries.(j + 1) boundaries.(j) in
    Model.add_constraint model ~name:(Printf.sprintf "pack_%d" j)
      (List.init nq (fun q -> (var.(q).(j), Q.one)))
      Model.Le cap;
    row_roles := `Pack j :: !row_roles
  done;
  for k = 0 to np - 1 do
    for i = 0 to nw - 1 do
      let rhs = ref Q.zero in
      for j = k to np - 1 do
        rhs := Q.add !rhs demand.(i).(j)
      done;
      if Q.sign !rhs > 0 then begin
        let terms = ref [] in
        for j = k to np - 1 do
          for q = 0 to nq - 1 do
            let a = configs.(q).(i) in
            if a > 0 then terms := (var.(q).(j), Q.of_int a) :: !terms
          done
        done;
        Model.add_constraint model ~name:(Printf.sprintf "cover_%d_%d" k i) !terms Model.Ge !rhs;
        row_roles := `Cover (k, i) :: !row_roles
      end
    done
  done;
  let row_roles = Array.of_list (List.rev !row_roles) in
  match Simplex.Exact.solve model with
  | Simplex.Infeasible | Simplex.Unbounded -> assert false (* see Config_lp *)
  | Simplex.Optimal { objective; solution; duals } ->
    let pack_dual = Array.make np Q.zero in
    let cover_dual = Array.make_matrix np nw Q.zero in
    Array.iteri
      (fun row role ->
        match role with
        | `Pack j -> pack_dual.(j) <- duals.(row)
        | `Cover (k, i) -> cover_dual.(k).(i) <- duals.(row))
      row_roles;
    (objective, solution, var, pack_dual, cover_dual)

let solve ?(cancel = Spp_util.Cancel.never) ?(max_rounds = 200) ?(max_denominator = 100_000)
    (inst : Release.t) =
  let widths = Array.of_list (Grouping.distinct_widths inst) in
  let releases = Grouping.distinct_releases inst in
  let boundaries =
    match releases with
    | r :: _ when Q.is_zero r -> Array.of_list releases
    | _ -> Array.of_list (Q.zero :: releases)
  in
  let np = Array.length boundaries in
  let nw = Array.length widths in
  let width_index w =
    let rec find i = if Q.equal widths.(i) w then i else find (i + 1) in
    find 0
  in
  let demand = Array.make_matrix nw np Q.zero in
  List.iter
    (fun (task : Release.task) ->
      let i = width_index task.Release.rect.Rect.w in
      let j =
        let rec find j = if Q.equal boundaries.(j) task.Release.release then j else find (j + 1) in
        find 0
      in
      demand.(i).(j) <- Q.add demand.(i).(j) task.Release.rect.Rect.h)
    inst.tasks;
  (* Scale widths to integers over a common denominator for the knapsack. *)
  let denom =
    Array.fold_left
      (fun acc w ->
        let d = Q.den w in
        let g = B.gcd acc d in
        B.div (B.mul acc d) g)
      B.one widths
  in
  let denom =
    match B.to_int_opt denom with
    | Some d when d <= max_denominator -> d
    | _ ->
      failwith
        (Printf.sprintf "Config_colgen.solve: width denominator exceeds %d; use Config_lp"
           max_denominator)
  in
  let scaled_width =
    Array.map (fun w -> B.to_int_exn (Q.floor (Q.mul_int w denom))) widths
  in
  (* Initial pool: one singleton configuration per width, filled to the brim
     (guarantees feasibility of every covering row from round one). *)
  let pool = Hashtbl.create 64 in
  let pool_list = ref [] in
  let add_config counts =
    let key = Array.to_list counts in
    if not (Hashtbl.mem pool key) then begin
      Hashtbl.replace pool key ();
      pool_list := counts :: !pool_list;
      true
    end
    else false
  in
  for i = 0 to nw - 1 do
    let counts = Array.make nw 0 in
    counts.(i) <- max 1 (denom / scaled_width.(i));
    ignore (add_config counts)
  done;
  let tol = 1e-9 in
  let rec rounds n =
    Spp_util.Cancel.check cancel;
    Spp_obs.Profile.add_colgen_rounds 1;
    let configs = Array.of_list (List.rev !pool_list) in
    let objective, solution, var, pack_dual, cover_dual =
      solve_restricted widths boundaries demand configs
    in
    if n >= max_rounds then
      failwith "Config_colgen.solve: round limit exhausted before convergence"
    else begin
      (* Pricing: column (q, j) has reduced cost
           c_j - pack_dual_j - sum_i a_iq * (sum_{k<=j} cover_dual_{k,i}).
         Maximise the knapsack part per phase. *)
      let improved = ref false in
      let acc = Array.make nw 0.0 in
      for j = 0 to np - 1 do
        for i = 0 to nw - 1 do
          acc.(i) <- acc.(i) +. Q.to_float cover_dual.(j).(i)
        done;
        let items =
          Array.to_list
            (Array.mapi
               (fun i w ->
                 { Knapsack.weight = scaled_width.(i); value = acc.(i);
                   bound = denom / max 1 w })
               scaled_width)
        in
        let best, counts = Knapsack.solve ~capacity:denom items in
        let c_j = if j = np - 1 then 1.0 else 0.0 in
        let threshold = c_j -. Q.to_float pack_dual.(j) in
        if best > threshold +. tol then
          if add_config counts then begin
            improved := true;
            (* Priced columns only — the initial singleton pool is not
               generation work. *)
            Spp_obs.Profile.add_colgen_columns 1
          end
      done;
      if !improved then rounds (n + 1)
      else begin
        (* Converged: package the restricted optimum as a Config_lp.solved. *)
        let occurrences = ref [] in
        Array.iteri
          (fun q counts ->
            for j = 0 to np - 1 do
              let x = solution.(var.(q).(j)) in
              if Q.sign x > 0 then
                occurrences := { Config_lp.counts; phase = j; height = x } :: !occurrences
            done)
          configs;
        let occurrences =
          List.stable_sort
            (fun (a : Config_lp.occurrence) b -> compare a.Config_lp.phase b.Config_lp.phase)
            (List.rev !occurrences)
        in
        {
          Config_lp.widths;
          boundaries;
          lp_value = objective;
          fractional_height = Q.add boundaries.(np - 1) objective;
          occurrences;
          num_configs = Array.length configs;
        }
      end
    end
  in
  rounds 0
