module Q = Spp_num.Rat
module B = Spp_num.Bigint
module Rect = Spp_geom.Rect
module Release = Instance.Release
module Model = Spp_lp.Model
module Simplex = Spp_lp.Simplex
module RM = Spp_lp.Simplex.Exact.Restricted
module Knapsack = Spp_pack.Knapsack

(* Cross-call warm pool: converged configuration pools keyed by the width
   signature (configurations are meaningful only for identical widths). A
   later solve over the same widths seeds its pool with the stored
   configurations, so the first restricted LP already contains the columns
   the previous run had to price — pricing rounds collapse. *)
type warm = { pools : (string, int array list) Hashtbl.t }

let warm_start () = { pools = Hashtbl.create 4 }

let widths_key widths =
  String.concat "," (Array.to_list (Array.map Q.to_string widths))

let solve ?(cancel = Spp_util.Cancel.never) ?(max_rounds = 200) ?(max_denominator = 100_000)
    ?warm (inst : Release.t) =
  let widths = Array.of_list (Grouping.distinct_widths inst) in
  let releases = Grouping.distinct_releases inst in
  let boundaries =
    match releases with
    | r :: _ when Q.is_zero r -> Array.of_list releases
    | _ -> Array.of_list (Q.zero :: releases)
  in
  let np = Array.length boundaries in
  let nw = Array.length widths in
  let width_index w =
    let rec find i = if Q.equal widths.(i) w then i else find (i + 1) in
    find 0
  in
  let demand = Array.make_matrix nw np Q.zero in
  List.iter
    (fun (task : Release.task) ->
      let i = width_index task.Release.rect.Rect.w in
      let j =
        let rec find j = if Q.equal boundaries.(j) task.Release.release then j else find (j + 1) in
        find 0
      in
      demand.(i).(j) <- Q.add demand.(i).(j) task.Release.rect.Rect.h)
    inst.tasks;
  (* Scale widths to integers over a common denominator for the knapsack. *)
  let denom =
    Array.fold_left
      (fun acc w ->
        let d = Q.den w in
        let g = B.gcd acc d in
        B.div (B.mul acc d) g)
      B.one widths
  in
  let denom =
    match B.to_int_opt denom with
    | Some d when d <= max_denominator -> d
    | _ ->
      failwith
        (Printf.sprintf "Config_colgen.solve: width denominator exceeds %d; use Config_lp"
           max_denominator)
  in
  let scaled_width =
    Array.map (fun w -> B.to_int_exn (Q.floor (Q.mul_int w denom))) widths
  in
  (* Initial pool: one singleton configuration per width, filled to the brim
     (guarantees feasibility of every covering row from round one). *)
  let pool = Hashtbl.create 64 in
  let pool_list = ref [] in
  let pool_size = ref 0 in
  let add_config counts =
    let key = Array.to_list counts in
    if not (Hashtbl.mem pool key) then begin
      Hashtbl.replace pool key ();
      pool_list := counts :: !pool_list;
      incr pool_size;
      true
    end
    else false
  in
  for i = 0 to nw - 1 do
    let counts = Array.make nw 0 in
    counts.(i) <- max 1 (denom / scaled_width.(i));
    ignore (add_config counts)
  done;
  (* Warm pool: configurations a previous solve over the same widths
     converged with. Their columns make the first master near-optimal. *)
  let wkey = widths_key widths in
  (match warm with
   | None -> ()
   | Some w ->
     (match Hashtbl.find_opt w.pools wkey with
      | None -> ()
      | Some configs -> List.iter (fun c -> ignore (add_config (Array.copy c))) configs));
  let tol = 1e-9 in
  (* One warm master per pool epoch: [attempt] builds the restricted LP over
     the whole current pool and hands it to [rounds], which appends priced
     columns to the same master and reoptimises from the incumbent basis.
     A rebuild (new epoch) happens only if the master dropped a redundant
     row, which appended columns cannot safely cross. *)
  let rec attempt round0 =
    let configs0 = Array.of_list (List.rev !pool_list) in
    let nq0 = Array.length configs0 in
    let model = Model.create () in
    let var = Array.make_matrix nq0 np (-1) in
    for q = 0 to nq0 - 1 do
      for j = 0 to np - 1 do
        var.(q).(j) <- Model.add_var model ~name:(Printf.sprintf "x_%d_%d" q j)
      done
    done;
    Model.set_objective model (List.init nq0 (fun q -> (var.(q).(np - 1), Q.one)));
    (* Constraint bookkeeping: row roles map duals back, and the reverse
       maps ([pack_row], [cover_row]) place appended columns' entries. *)
    let row_roles = ref [] in
    let nrows = ref 0 in
    let pack_row = Array.make (max 1 (np - 1)) (-1) in
    let cover_row = Array.make_matrix np nw (-1) in
    for j = 0 to np - 2 do
      let cap = Q.sub boundaries.(j + 1) boundaries.(j) in
      Model.add_constraint model ~name:(Printf.sprintf "pack_%d" j)
        (List.init nq0 (fun q -> (var.(q).(j), Q.one)))
        Model.Le cap;
      pack_row.(j) <- !nrows;
      incr nrows;
      row_roles := `Pack j :: !row_roles
    done;
    for k = 0 to np - 1 do
      for i = 0 to nw - 1 do
        let rhs = ref Q.zero in
        for j = k to np - 1 do
          rhs := Q.add !rhs demand.(i).(j)
        done;
        if Q.sign !rhs > 0 then begin
          let terms = ref [] in
          for j = k to np - 1 do
            for q = 0 to nq0 - 1 do
              let a = configs0.(q).(i) in
              if a > 0 then terms := (var.(q).(j), Q.of_int a) :: !terms
            done
          done;
          Model.add_constraint model ~name:(Printf.sprintf "cover_%d_%d" k i) !terms Model.Ge !rhs;
          cover_row.(k).(i) <- !nrows;
          incr nrows;
          row_roles := `Cover (k, i) :: !row_roles
        end
      done
    done;
    let row_roles = Array.of_list (List.rev !row_roles) in
    let rm =
      match RM.create model with
      | `Optimal rm -> rm
      | `Infeasible | `Unbounded -> assert false (* see Config_lp *)
    in
    (* Appended (counts, phase) pairs, newest first; the master's solution
       lists their values after the nq0 * np model variables. *)
    let appended = ref [] in
    let read_duals () =
      let duals = RM.duals rm in
      let pack_dual = Array.make np Q.zero in
      let cover_dual = Array.make_matrix np nw Q.zero in
      Array.iteri
        (fun row role ->
          match role with
          | `Pack j -> pack_dual.(j) <- duals.(row)
          | `Cover (k, i) -> cover_dual.(k).(i) <- duals.(row))
        row_roles;
      (pack_dual, cover_dual)
    in
    (* Column for configuration [counts] in phase [j]: objective 1 only in
       the last phase; coefficient 1 in its packing row; coefficient
       counts.(i) in every covering row (k, i) with k <= j that exists. *)
    let append_column counts j =
      let obj = if j = np - 1 then Q.one else Q.zero in
      let entries = ref [] in
      if j <= np - 2 then entries := (pack_row.(j), Q.one) :: !entries;
      for k = 0 to j do
        for i = 0 to nw - 1 do
          let r = cover_row.(k).(i) in
          if r >= 0 && counts.(i) > 0 then entries := (r, Q.of_int counts.(i)) :: !entries
        done
      done;
      match RM.add_column rm ~obj ~entries:!entries with
      | `Added ->
        appended := (counts, j) :: !appended;
        true
      | `Needs_rebuild -> false
    in
    let finish () =
      let objective = RM.objective rm in
      let solution = RM.solution rm in
      let occurrences = ref [] in
      for q = 0 to nq0 - 1 do
        for j = 0 to np - 1 do
          let x = solution.(var.(q).(j)) in
          if Q.sign x > 0 then
            occurrences := { Config_lp.counts = configs0.(q); phase = j; height = x } :: !occurrences
        done
      done;
      List.iteri
        (fun a (counts, j) ->
          let x = solution.((nq0 * np) + a) in
          if Q.sign x > 0 then
            occurrences := { Config_lp.counts; phase = j; height = x } :: !occurrences)
        (List.rev !appended);
      let occurrences =
        List.stable_sort
          (fun (a : Config_lp.occurrence) b -> compare a.Config_lp.phase b.Config_lp.phase)
          (List.rev !occurrences)
      in
      (match warm with
       | None -> ()
       | Some w -> Hashtbl.replace w.pools wkey (List.rev_map Array.copy !pool_list));
      {
        Config_lp.widths;
        boundaries;
        lp_value = objective;
        fractional_height = Q.add boundaries.(np - 1) objective;
        occurrences;
        num_configs = !pool_size;
      }
    in
    let rec rounds n =
      Spp_util.Cancel.check cancel;
      Spp_obs.Profile.add_colgen_rounds 1;
      if n >= max_rounds then
        failwith "Config_colgen.solve: round limit exhausted before convergence";
      (* Pricing: column (q, j) has reduced cost
           c_j - pack_dual_j - sum_i a_iq * (sum_{k<=j} cover_dual_{k,i}).
         Maximise the knapsack part per phase. *)
      let pack_dual, cover_dual = read_duals () in
      let acc = Array.make nw 0.0 in
      let fresh = ref [] in
      for j = 0 to np - 1 do
        for i = 0 to nw - 1 do
          acc.(i) <- acc.(i) +. Q.to_float cover_dual.(j).(i)
        done;
        let items =
          Array.to_list
            (Array.mapi
               (fun i w ->
                 { Knapsack.weight = scaled_width.(i); value = acc.(i);
                   bound = denom / max 1 w })
               scaled_width)
        in
        let best, counts = Knapsack.solve ~capacity:denom items in
        let c_j = if j = np - 1 then 1.0 else 0.0 in
        let threshold = c_j -. Q.to_float pack_dual.(j) in
        if best > threshold +. tol then
          if add_config counts then begin
            (* Priced columns only — the initial singleton pool is not
               generation work. *)
            Spp_obs.Profile.add_colgen_columns 1;
            fresh := counts :: !fresh
          end
      done;
      match List.rev !fresh with
      | [] -> finish ()
      | fresh_configs ->
        let ok =
          List.for_all
            (fun counts ->
              let rec phases j = j >= np || (append_column counts j && phases (j + 1)) in
              phases 0)
            fresh_configs
        in
        if not ok then attempt (n + 1)
        else begin
          (match RM.reoptimize rm with
           | `Optimal -> ()
           | `Unbounded -> assert false);
          rounds (n + 1)
        end
    in
    rounds round0
  in
  attempt 0
