module Q = Spp_num.Rat
module B = Spp_num.Bigint
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Release = Instance.Release
module Heap = Spp_util.Heap

type result = {
  placement : Placement.t;
  height : Q.t;
  fractional_height : Q.t;
  lower_bound : Q.t;
  occurrences : int;
  max_occurrences : int;
  num_configs : int;
  num_widths : int;
  num_phases : int;
  r_param : int;
  w_param : int;
  fallback_rects : int;
}

let ceil_inv_int eps =
  (* ⌈1/eps⌉ as a native int. *)
  B.to_int_exn (Q.ceil (Q.inv eps))

(* Lemma 3.4: convert the fractional solution into an integral placement.
   For each nonzero occurrence (q, j), bottom-up by phase, each width slot
   of q becomes a column greedily filled with not-yet-placed rectangles of
   that (grouped) width already released at phase j, earliest release
   first. The column may overshoot its reserved height by less than one
   rectangle; the running top shifts everything above accordingly. *)
let round_to_integral ~cancel (reduced : Release.t) (sol : Config_lp.solved) =
  (* Per width index: min-heap of tasks by (release, id). *)
  let nw = Array.length sol.widths in
  let heaps =
    Array.init nw (fun _ ->
        Heap.create ~cmp:(fun (a : Release.task) b ->
            let c = Q.compare a.Release.release b.Release.release in
            if c <> 0 then c else compare a.Release.rect.Rect.id b.Release.rect.Rect.id))
  in
  let width_index w =
    let rec find i = if Q.equal sol.widths.(i) w then i else find (i + 1) in
    find 0
  in
  List.iter
    (fun (task : Release.task) ->
      Heap.push heaps.(width_index task.Release.rect.Rect.w) task)
    reduced.tasks;
  let items = ref [] in
  let y = ref Q.zero in
  List.iter
    (fun (occ : Config_lp.occurrence) ->
      Spp_util.Cancel.check cancel;
      let phase_start = sol.boundaries.(occ.phase) in
      y := Q.max !y phase_start;
      let base = !y in
      let max_fill = ref Q.zero in
      let x_off = ref Q.zero in
      Array.iteri
        (fun i count ->
          for _copy = 1 to count do
            let cum = ref Q.zero in
            let continue = ref true in
            while !continue && Q.compare !cum occ.height < 0 do
              match Heap.peek heaps.(i) with
              | Some task when Q.compare task.Release.release phase_start <= 0 ->
                ignore (Heap.pop_exn heaps.(i));
                items :=
                  { Placement.rect = task.Release.rect;
                    pos = { Placement.x = !x_off; y = Q.add base !cum } }
                  :: !items;
                cum := Q.add !cum task.Release.rect.Rect.h
              | _ -> continue := false
            done;
            max_fill := Q.max !max_fill !cum;
            x_off := Q.add !x_off sol.widths.(i)
          done)
        occ.counts;
      y := Q.add base (Q.max occ.height !max_fill))
    sol.occurrences;
  (* Safety net: the covering constraints guarantee every rectangle is
     placed; if that ever failed, stack the leftovers with NFDH above
     everything (still valid, asymptotically harmless) and report. *)
  let leftovers =
    Array.to_list heaps
    |> List.concat_map (fun h ->
        let rec drain acc = match Heap.pop h with None -> acc | Some t -> drain (t :: acc) in
        drain [])
  in
  let fallback_rects = List.length leftovers in
  let items =
    if leftovers = [] then !items
    else begin
      let rects = List.map (fun (t : Release.task) -> t.Release.rect) leftovers in
      let max_rel =
        List.fold_left (fun acc (t : Release.task) -> Q.max acc t.Release.release) Q.zero leftovers
      in
      let extra = Spp_pack.Level.nfdh rects in
      let extra = Placement.shift_y extra (Q.max !y max_rel) in
      Placement.items extra @ !items
    end
  in
  (Placement.of_items items, fallback_rects)

let solve ?(cancel = Spp_util.Cancel.never) ?max_configs ?(solver = `Enumerate) ?warm ~epsilon
    (inst : Release.t) =
  if Q.sign epsilon <= 0 then invalid_arg "Aptas.solve: epsilon must be positive";
  let eps' = Q.div epsilon (Q.of_int 3) in
  let r_param = ceil_inv_int eps' in
  let groups_per_class = ceil_inv_int eps' * inst.k in
  let w_param = groups_per_class * (r_param + 1) in
  (* Line 5: P -> P(R). *)
  let p_r = Grouping.round_releases ~epsilon_r:eps' inst in
  Spp_util.Cancel.check cancel;
  (* Line 6: P(R) -> P(R,W). *)
  let p_rw = Grouping.group_widths ~groups_per_class p_r in
  Spp_util.Cancel.check cancel;
  (* Line 7: exact configuration LP (enumerated or column-generated). *)
  let sol =
    match solver with
    | `Enumerate -> Config_lp.solve ?max_configs p_rw
    | `Column_generation -> Config_colgen.solve ~cancel ?warm p_rw
  in
  Spp_util.Cancel.check cancel;
  (* Line 8: fractional -> integral (positions computed on the reduced
     rects, then transferred to the original rects, which are no wider and
     released no later). *)
  let reduced_placement, fallback_rects = round_to_integral ~cancel p_rw sol in
  let original_rect = Hashtbl.create 16 in
  List.iter
    (fun (task : Release.task) -> Hashtbl.replace original_rect task.Release.rect.Rect.id task.Release.rect)
    inst.tasks;
  let placement =
    Placement.of_items
      (List.map
         (fun (it : Placement.item) ->
           { it with Placement.rect = Hashtbl.find original_rect it.rect.Rect.id })
         (Placement.items reduced_placement))
  in
  let one_plus = Q.add Q.one eps' in
  let lower_bound =
    Q.max
      (Q.div sol.fractional_height (Q.mul one_plus one_plus))
      (Lower_bounds.release inst)
  in
  {
    placement;
    height = Placement.height placement;
    fractional_height = sol.fractional_height;
    lower_bound;
    occurrences = List.length sol.occurrences;
    max_occurrences = (w_param + 1) * (r_param + 1);
    num_configs = sol.num_configs;
    num_widths = Array.length sol.widths;
    num_phases = Array.length sol.boundaries;
    r_param;
    w_param;
    fallback_rects;
  }

let strip ?max_configs ?solver ~epsilon ~k rects =
  let tasks = List.map (fun rect -> { Release.rect; release = Q.zero }) rects in
  solve ?max_configs ?solver ~epsilon (Release.make ~k tasks)
