(** Online packing policies: who gets committed to the live strip, when.

    Both policies are deterministic functions of the strip state and the
    pending queue; neither ever delays a task it has decided to place
    (commits are irrevocable, enforced by {!Strip_state}).

    {b First-fit} places each pending task, in arrival order, at the
    leftmost column window that fits, the moment one exists — the
    classic greedy the shelf algorithms of the paper's Section 1 FPGA
    setting reduce to when decisions are forced at arrival.

    {b Buffered(b)} is the lookahead variant: it may hold up to [b]
    pending tasks while the strip is busy and more arrivals are coming,
    then flushes widest-first — trading latency for packing quality on
    bursts, where arrival order is adversarially interleaved. It never
    holds when the strip is idle, when the buffer overflows, or once the
    stream ends, so it cannot deadlock. *)

type t =
  | First_fit
  | Buffered of int  (** lookahead buffer capacity, >= 1 *)

(** [parse s] reads ["first-fit"] (or ["ff"]) and ["buffered"] /
    ["buffered:K"] (default K = {!default_lookahead}). *)
val parse : string -> (t, string) result

val to_string : t -> string

val default_lookahead : int

(** [step policy strip ~pending ~more_arrivals] places whatever the
    policy commits at the strip's current instant (mutating [strip]) and
    returns [(placed, still_pending)]: each placed arrival is paired with
    its column, [still_pending] preserves arrival order. *)
val step :
  t ->
  Strip_state.t ->
  pending:Arrivals.arrival list ->
  more_arrivals:bool ->
  (Arrivals.arrival * int) list * Arrivals.arrival list
