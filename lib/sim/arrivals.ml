module Q = Spp_num.Rat
module B = Spp_num.Bigint
module Prng = Spp_util.Prng
module Rect = Spp_geom.Rect
module I = Spp_core.Instance
module G = Spp_workloads.Generators

type spec =
  | Poisson of float
  | Burst of { burst_len : int; idle_gap : float }

let parse_spec s =
  let err () =
    Error
      (Printf.sprintf
         "bad arrival spec %S (want poisson:RATE or burst:LEN:GAP, e.g. poisson:1.5 or \
          burst:6:2.0)"
         s)
  in
  match String.split_on_char ':' s with
  | [ "poisson"; rate ] -> (
    match float_of_string_opt rate with
    | Some r when r > 0.0 -> Ok (Poisson r)
    | _ -> err ())
  | [ "burst"; len; gap ] -> (
    match (int_of_string_opt len, float_of_string_opt gap) with
    | Some l, Some g when l >= 1 && g > 0.0 -> Ok (Burst { burst_len = l; idle_gap = g })
    | _ -> err ())
  | _ -> err ()

let spec_to_string = function
  | Poisson r -> Printf.sprintf "poisson:%g" r
  | Burst { burst_len; idle_gap } -> Printf.sprintf "burst:%d:%g" burst_len idle_gap

let trace ?(n = 40) ?(k = 8) ?(h_den = 4) ?(r_den = 2) ~seed spec =
  let rng = Prng.create seed in
  match spec with
  | Poisson rate -> G.poisson_release rng ~n ~k ~h_den ~r_den ~rate
  | Burst { burst_len; idle_gap } ->
    G.bursty_release rng ~n ~k ~h_den ~r_den ~burst_len ~idle_gap

type arrival = { id : int; cols : int; duration : Q.t; release : Q.t }

let of_instance (inst : I.Release.t) =
  let k = inst.I.Release.k in
  let widened = ref 0 in
  let arrivals =
    List.map
      (fun (t : I.Release.task) ->
        let scaled = Q.mul_int t.I.Release.rect.Rect.w k in
        let cols =
          let fl = Q.floor scaled in
          if Q.equal (Q.of_bigint fl) scaled then B.to_int_exn fl
          else begin
            incr widened;
            B.to_int_exn (Q.ceil scaled)
          end
        in
        { id = t.I.Release.rect.Rect.id; cols; duration = t.I.Release.rect.Rect.h;
          release = t.I.Release.release })
      inst.I.Release.tasks
  in
  let sorted =
    List.sort
      (fun a b -> match Q.compare a.release b.release with 0 -> compare a.id b.id | c -> c)
      arrivals
  in
  (sorted, !widened)

let pacing rng spec =
  match spec with
  | Poisson rate -> fun () -> Prng.exponential rng ~rate *. 1000.0
  | Burst { burst_len; idle_gap } ->
    let in_burst = ref 0 in
    fun () ->
      if !in_burst > 0 then begin
        decr in_burst;
        0.0
      end
      else begin
        in_burst := burst_len - 1;
        Prng.exponential rng ~rate:(1.0 /. idle_gap) *. 1000.0
      end
