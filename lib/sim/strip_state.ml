module Q = Spp_num.Rat

type resident = {
  id : int;
  cols : int;
  col_lo : int;
  started : Q.t;
  finish : Q.t;
}

type segment = {
  seg_id : int;
  seg_cols : int;
  seg_lo : int;
  seg_from : Q.t;
  seg_to : Q.t;
}

type live = {
  mutable r : resident;
  mutable seg_from : Q.t;  (** start of the current (live) segment *)
}

type t = {
  k : int;
  mutable now : Q.t;
  live : (int, live) Hashtbl.t;
  mutable closed : segment list;  (** reverse closing order *)
}

let create ~k =
  if k < 1 then invalid_arg "Strip_state.create: k must be >= 1";
  { k; now = Q.zero; live = Hashtbl.create 16; closed = [] }

let k t = t.k
let now t = t.now

let residents t =
  Hashtbl.fold (fun _ l acc -> l.r :: acc) t.live []
  |> List.sort (fun a b -> compare a.id b.id)

let resident_count t = Hashtbl.length t.live

(* Column occupancy as a mask; k is FPGA-column-count small, so a scan is
   cheaper and clearer than an interval tree. *)
let occupancy t =
  let occ = Array.make t.k false in
  Hashtbl.iter
    (fun _ l ->
      for c = l.r.col_lo to l.r.col_lo + l.r.cols - 1 do
        occ.(c) <- true
      done)
    t.live;
  occ

let free_cols t = t.k - Hashtbl.fold (fun _ l acc -> acc + l.r.cols) t.live 0

let largest_free_run t =
  let occ = occupancy t in
  let best = ref 0 and run = ref 0 in
  Array.iter
    (fun o ->
      if o then run := 0
      else begin
        incr run;
        if !run > !best then best := !run
      end)
    occ;
  !best

let fragmentation t =
  let free = free_cols t in
  if free = 0 then Q.zero else Q.sub Q.one (Q.of_ints (largest_free_run t) free)

let fragmentation_f t = Q.to_float (fragmentation t)

let first_fit t ~cols =
  if cols < 1 || cols > t.k then invalid_arg "Strip_state.first_fit: cols out of range";
  let occ = occupancy t in
  let lo = ref 0 and found = ref None in
  (try
     while !lo + cols <= t.k do
       let blocked = ref None in
       for c = !lo + cols - 1 downto !lo do
         if occ.(c) then blocked := Some c
       done;
       match !blocked with
       | None ->
         found := Some !lo;
         raise Exit
       | Some c -> lo := c + 1
     done
   with Exit -> ());
  !found

let overlap_cols lo1 n1 lo2 n2 = lo1 < lo2 + n2 && lo2 < lo1 + n1

let place t ~id ~cols ~col_lo ~duration =
  if cols < 1 || col_lo < 0 || col_lo + cols > t.k then
    invalid_arg
      (Printf.sprintf "Strip_state.place: task %d columns [%d,%d) outside [0,%d)" id col_lo
         (col_lo + cols) t.k);
  if Q.sign duration <= 0 then
    invalid_arg (Printf.sprintf "Strip_state.place: task %d has non-positive duration" id);
  if Hashtbl.mem t.live id then
    invalid_arg (Printf.sprintf "Strip_state.place: task %d is already resident" id);
  Hashtbl.iter
    (fun _ l ->
      if overlap_cols col_lo cols l.r.col_lo l.r.cols then
        invalid_arg
          (Printf.sprintf "Strip_state.place: task %d overlaps resident %d" id l.r.id))
    t.live;
  let r = { id; cols; col_lo; started = t.now; finish = Q.add t.now duration } in
  Hashtbl.replace t.live id { r; seg_from = t.now }

let advance t time =
  if Q.compare time t.now < 0 then invalid_arg "Strip_state.advance: time went backwards";
  t.now <- time;
  let done_ =
    Hashtbl.fold (fun _ l acc -> if Q.compare l.r.finish time <= 0 then l :: acc else acc)
      t.live []
    |> List.sort (fun a b ->
           match Q.compare a.r.finish b.r.finish with 0 -> compare a.r.id b.r.id | c -> c)
  in
  List.iter
    (fun l ->
      Hashtbl.remove t.live l.r.id;
      t.closed <-
        { seg_id = l.r.id; seg_cols = l.r.cols; seg_lo = l.r.col_lo; seg_from = l.seg_from;
          seg_to = l.r.finish }
        :: t.closed)
    done_;
  List.map (fun l -> l.r) done_

let apply_moves t moves =
  let moves =
    List.filter
      (fun (id, lo) ->
        match Hashtbl.find_opt t.live id with
        | None -> invalid_arg (Printf.sprintf "Strip_state.apply_moves: task %d not resident" id)
        | Some l -> l.r.col_lo <> lo)
      moves
  in
  if moves <> [] then begin
    (* Validate the final configuration before mutating anything. *)
    let final =
      Hashtbl.fold
        (fun id l acc ->
          let lo = match List.assoc_opt id moves with Some lo -> lo | None -> l.r.col_lo in
          (id, lo, l.r.cols) :: acc)
        t.live []
    in
    List.iter
      (fun (id, lo, cols) ->
        if lo < 0 || lo + cols > t.k then
          invalid_arg
            (Printf.sprintf "Strip_state.apply_moves: task %d columns [%d,%d) outside [0,%d)" id
               lo (lo + cols) t.k))
      final;
    let rec pairwise = function
      | [] -> ()
      | (id1, lo1, c1) :: rest ->
        List.iter
          (fun (id2, lo2, c2) ->
            if overlap_cols lo1 c1 lo2 c2 then
              invalid_arg
                (Printf.sprintf "Strip_state.apply_moves: tasks %d and %d would overlap" id1 id2))
          rest;
        pairwise rest
    in
    pairwise final;
    List.iter
      (fun (id, lo) ->
        let l = Hashtbl.find t.live id in
        (* Zero-length segments (a move at the exact instant of the last
           move or the placement) would be vacuous; only log real spans. *)
        if Q.compare l.seg_from t.now < 0 then
          t.closed <-
            { seg_id = id; seg_cols = l.r.cols; seg_lo = l.r.col_lo; seg_from = l.seg_from;
              seg_to = t.now }
            :: t.closed;
        l.r <- { l.r with col_lo = lo };
        l.seg_from <- t.now)
      moves
  end

let segments t =
  let live =
    Hashtbl.fold
      (fun _ l acc ->
        { seg_id = l.r.id; seg_cols = l.r.cols; seg_lo = l.r.col_lo; seg_from = l.seg_from;
          seg_to = l.r.finish }
        :: acc)
      t.live []
    |> List.sort (fun a b -> compare a.seg_id b.seg_id)
  in
  List.rev_append t.closed live
