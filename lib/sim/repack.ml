module Q = Spp_num.Rat
module B = Spp_num.Bigint

type plan = {
  moves : (int * int) list;
  cells : int;
}

let plan_of residents assignment =
  let moves =
    List.filter_map
      (fun (r : Strip_state.resident) ->
        match List.assoc_opt r.Strip_state.id assignment with
        | Some lo when lo <> r.Strip_state.col_lo -> Some (r.Strip_state.id, lo)
        | _ -> None)
      residents
  in
  let cells =
    List.fold_left
      (fun acc (id, _) ->
        let r = List.find (fun (r : Strip_state.resident) -> r.Strip_state.id = id) residents in
        acc + r.Strip_state.cols)
      0 moves
  in
  { moves; cells }

let greedy strip =
  let residents =
    List.sort
      (fun (a : Strip_state.resident) b ->
        compare (a.Strip_state.col_lo, a.Strip_state.id) (b.Strip_state.col_lo, b.Strip_state.id))
      (Strip_state.residents strip)
  in
  let next = ref 0 in
  let assignment =
    List.map
      (fun (r : Strip_state.resident) ->
        let lo = !next in
        next := !next + r.Strip_state.cols;
        (r.Strip_state.id, lo))
      residents
  in
  plan_of residents assignment

let default_max_residents = 7

let exact ?(max_residents = default_max_residents) strip =
  let residents = Strip_state.residents strip in
  let n = List.length residents in
  if n > max_residents then None
  else if n = 0 then Some { moves = []; cells = 0 }
  else begin
    let k = Strip_state.k strip in
    let free = k - List.fold_left (fun a (r : Strip_state.resident) -> a + r.Strip_state.cols) 0 residents in
    (* Admissible lower bound: in any defragmented layout a resident sits
       at a subset sum of resident widths, shifted by the gap or not. One
       whose current column is at neither kind of position must move. *)
    let sums =
      Spp_exact.Normal_bb.subset_sums
        (List.map (fun (r : Strip_state.resident) -> Q.of_int r.Strip_state.cols) residents)
      |> List.filter_map (fun q ->
             let fl = Q.floor q in
             if Q.equal (Q.of_bigint fl) q then Some (B.to_int_exn fl) else None)
    in
    let reachable lo = List.mem lo sums || (free > 0 && List.mem (lo - free) sums) in
    let lower_bound =
      List.fold_left
        (fun acc (r : Strip_state.resident) ->
          if reachable r.Strip_state.col_lo then acc else acc + r.Strip_state.cols)
        0 residents
    in
    let best_cost = ref max_int in
    let best_assignment = ref [] in
    let exception Optimal in
    (* Build layouts left to right: at each step either extend the packed
       block with one remaining resident or (once) insert the free gap. *)
    let rec go next_col gap_used cost acc remaining =
      if cost >= !best_cost then ()
      else
        match remaining with
        | [] ->
          best_cost := cost;
          best_assignment := acc;
          if cost <= lower_bound then raise Optimal
        | _ ->
          if (not gap_used) && free > 0 then
            go (next_col + free) true cost acc remaining;
          List.iter
            (fun (r : Strip_state.resident) ->
              let move = if next_col = r.Strip_state.col_lo then 0 else r.Strip_state.cols in
              go (next_col + r.Strip_state.cols) gap_used (cost + move)
                ((r.Strip_state.id, next_col) :: acc)
                (List.filter (fun (o : Strip_state.resident) -> o.Strip_state.id <> r.Strip_state.id) remaining))
            remaining
    in
    (try go 0 false 0 [] residents with Optimal -> ());
    Some (plan_of residents !best_assignment)
  end

let best ?max_residents strip =
  match exact ?max_residents strip with
  | Some p -> p
  | None -> greedy strip
