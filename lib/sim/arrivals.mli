(** Deterministic, seeded arrival traces for the online simulator — and
    the pacing source [spp loadgen --arrival] uses to shape open-loop
    traffic.

    A trace {e is} a release-time instance: the arrival stream the
    simulator feeds to an online packer and the input the offline APTAS
    sees are one and the same object, so competitive ratios compare like
    with like. Every trace is a pure function of [(spec, seed, n, k)]
    via {!Spp_workloads.Generators}; replaying a seed reproduces the
    arrival stream bit for bit. *)

type spec =
  | Poisson of float  (** arrival rate, tasks per unit of strip time *)
  | Burst of { burst_len : int; idle_gap : float }
      (** [burst_len] back-to-back arrivals, Exp([1/idle_gap]) quiet gaps *)

(** [parse_spec s] reads ["poisson:RATE"] or ["burst:LEN:GAP"]. *)
val parse_spec : string -> (spec, string) result

val spec_to_string : spec -> string

(** [trace ~seed spec] draws the full timed trace as a release-time
    instance. Defaults: [n = 40] tasks, [k = 8] columns, heights in
    quarters ([h_den = 4]), releases in halves ([r_den = 2]). *)
val trace :
  ?n:int -> ?k:int -> ?h_den:int -> ?r_den:int -> seed:int -> spec ->
  Spp_core.Instance.Release.t

(** One timed arrival, in strip units ([cols] of the [k] columns for
    [duration] time, available from [release]). *)
type arrival = { id : int; cols : int; duration : Spp_num.Rat.t; release : Spp_num.Rat.t }

(** [of_instance inst] converts a release-time instance into the arrival
    stream, sorted by (release, id). Widths are converted to column
    counts; a width that is not an exact multiple of [1/k] is widened to
    the next column boundary (a conservative rounding: the simulated task
    can only demand {e more} than the instance asked). Returns the
    arrivals and the number widened. *)
val of_instance : Spp_core.Instance.Release.t -> arrival list * int

(** [pacing rng spec] is a gap generator for open-loop load generation:
    each call returns the delay {e in milliseconds} before the next
    request, interpreting the spec's time unit as one second.
    [Poisson r] yields Exp(r) gaps; [Burst _] yields zero gaps inside a
    burst and exponential idle gaps between bursts. Deterministic from
    [rng]. *)
val pacing : Spp_util.Prng.t -> spec -> unit -> float
