(** Min-disruption repacking: when fragmentation leaves total free
    capacity that no single window realises, relocate residents so the
    free columns become one contiguous run — moving as few cells as
    possible, because every moved cell is paid for (reconfiguration /
    state-migration cost in the FPGA reading of the paper).

    A plan is a set of simultaneous column moves for the current
    residents; its cost is the total column footprint of the tasks that
    actually change position. Applying any plan produced here drives
    {!Strip_state.fragmentation} to zero, so a triggered repack strictly
    decreases fragmentation whenever it was positive. *)

type plan = {
  moves : (int * int) list;  (** (task id, new col_lo), only real moves *)
  cells : int;  (** total cols of moved tasks — the disruption *)
}

(** Left-compaction in ascending current-column order: simple, linear,
    and already optimal whenever the stuck residents are the left-most
    ones. Never worse than moving everything. *)
val greedy : Strip_state.t -> plan

(** Exhaustive min-cost search over all defragmented layouts (orderings
    of the residents around a single free gap), with incumbent pruning
    and an admissible lower bound from {!Spp_exact.Normal_bb.subset_sums}
    (a resident whose current column is not a reachable final position
    must move). Returns [None] when there are more than [max_residents]
    residents (default 7, the exact-solver gate used elsewhere). *)
val exact : ?max_residents:int -> Strip_state.t -> plan option

(** Best available plan: {!exact} when the instance is small enough,
    {!greedy} otherwise. *)
val best : ?max_residents:int -> Strip_state.t -> plan
