(** The live strip: which task occupies which columns {e right now}.

    The offline solvers see the whole instance and emit a placement; the
    online simulator instead owns a [k]-column strip evolving over a
    virtual rational clock. A task committed at time [t] on columns
    [\[col_lo, col_lo + cols)] runs there until [t + duration] — the
    commitment is irrevocable in {e time} (a started task is never
    preempted or delayed) but a repacking may {e relocate} its columns
    mid-flight, which is exactly the migration the defragmentation
    literature charges for.

    Every occupancy interval is logged as a {!segment}, so an entire run
    can be checked for soundness after the fact (no two segments overlap
    in time × columns, chains are gapless, releases respected) by
    {!Sim.check_segments} — the online counterpart of
    {!Spp_core.Validate}. *)

type resident = {
  id : int;
  cols : int;  (** column footprint (width · k) *)
  col_lo : int;  (** current leftmost column *)
  started : Spp_num.Rat.t;  (** commit time (never changes, even on moves) *)
  finish : Spp_num.Rat.t;  (** [started + duration] *)
}

(** One maximal interval during which a task occupied a fixed column
    range: [\[lo, lo + cols)] over [\[from_t, to_t)]. A task that is never
    migrated has exactly one segment. *)
type segment = {
  seg_id : int;
  seg_cols : int;
  seg_lo : int;
  seg_from : Spp_num.Rat.t;
  seg_to : Spp_num.Rat.t;
}

type t

(** [create ~k] is an empty strip of [k] columns at time 0.
    @raise Invalid_argument if [k < 1]. *)
val create : k:int -> t

val k : t -> int

(** Current virtual time. *)
val now : t -> Spp_num.Rat.t

(** [advance t time] moves the clock forward (monotone; equal is a no-op)
    and retires every resident with [finish <= time], returning them in
    (finish, id) order. Each retirement closes the resident's live
    segment at its exact finish instant.
    @raise Invalid_argument on a backwards step. *)
val advance : t -> Spp_num.Rat.t -> resident list

val residents : t -> resident list
val resident_count : t -> int

(** Columns not covered by any resident. *)
val free_cols : t -> int

(** Length of the longest contiguous free column run (0 when full). *)
val largest_free_run : t -> int

(** The fragmentation metric, exact: [1 - largest_free_run / free_cols],
    and [0] when the strip is full ({e or} when all free space is one
    run). 0 = free space fully usable by a task as wide as it is free;
    approaching 1 = free space shattered into slivers. *)
val fragmentation : t -> Spp_num.Rat.t

(** Float view of {!fragmentation} for reporting. *)
val fragmentation_f : t -> float

(** [first_fit t ~cols] is the leftmost [col_lo] with [cols] contiguous
    free columns, if any. @raise Invalid_argument if [cols] is not in
    [1..k]. *)
val first_fit : t -> cols:int -> int option

(** [place t ~id ~cols ~col_lo ~duration] commits a task at the current
    time. Irrevocable: the task occupies its columns until
    [now + duration].
    @raise Invalid_argument on overlap, out-of-range columns, a
    non-positive duration, or a duplicate live id. *)
val place : t -> id:int -> cols:int -> col_lo:int -> duration:Spp_num.Rat.t -> unit

(** [apply_moves t moves] relocates residents atomically: [moves] is a
    list of [(id, new_col_lo)]. The {e final} configuration is validated
    (pairwise disjoint, in range) before anything mutates, so a plan that
    permutes residents through each other's old slots is fine. Ids whose
    target equals their current [col_lo] are ignored. Each genuinely
    moved resident's live segment is closed at [now] and a new one
    opened.
    @raise Invalid_argument on an unknown id or an invalid final
    configuration (nothing is mutated in that case). *)
val apply_moves : t -> (int * int) list -> unit

(** All segments logged so far, closed ones in closing order, then live
    ones (their [seg_to] is the resident's finish) — the complete
    occupancy history of the run. *)
val segments : t -> segment list
