(** The event-driven online simulator: a virtual clock, a release-time
    instance replayed as an arrival stream, an {!Online} packer making
    irrevocable commits against {!Strip_state}, and optional
    {!Repack}-on-threshold between events.

    Everything is a pure function of the instance and the options —
    there is no wall-clock anywhere in the loop — so a run is
    bit-reproducible: same instance, same options, same {!report}.

    The report carries the full segment log, so soundness is checked
    {e post hoc} by {!check} (an independent validator, sharing no code
    with the packer) and, for move-free runs, cross-checked against the
    offline oracle via {!to_placement} +
    {!Spp_core.Validate.check_release}. *)

type repack_event = {
  at : Spp_num.Rat.t;
  frag_before : Spp_num.Rat.t;
  frag_after : Spp_num.Rat.t;
  moved : int;  (** residents relocated *)
  cells : int;  (** column cells migrated *)
}

type report = {
  k : int;
  tasks : int;
  widened : int;  (** arrivals widened to a column boundary *)
  makespan : Spp_num.Rat.t;
  total_wait : Spp_num.Rat.t;  (** sum over tasks of (start - release) *)
  max_pending : int;  (** peak length of the pending queue *)
  placements : int;
  repacks : repack_event list;  (** chronological *)
  moves : int;
  cells_migrated : int;
  migration_cost : Spp_num.Rat.t;  (** cells_migrated * cost per cell *)
  frag_peak : Spp_num.Rat.t;  (** max fragmentation sampled at any event *)
  frag_mean : Spp_num.Rat.t;  (** time-weighted mean over [0, makespan] *)
  segments : Strip_state.segment list;
}

(** [run ~packer inst] replays [inst]'s tasks in release order through
    the online [packer].

    [repack_threshold]: when set, after each event at which fragmentation
    is positive and [>=] the threshold, the cheapest available
    {!Repack.best} plan is applied (fragmentation drops to zero by
    construction). [migration_cost] (default 1) prices each migrated
    cell. [exact_repack_max] bounds the exact repack search (default 7
    residents).

    [registry] receives [spp_sim_*] counters/gauges; [trace] gets a
    [sim.run] span annotated with the headline numbers. *)
val run :
  ?registry:Spp_obs.Metrics.t ->
  ?trace:Spp_obs.Trace.t ->
  ?repack_threshold:Spp_num.Rat.t ->
  ?migration_cost:Spp_num.Rat.t ->
  ?exact_repack_max:int ->
  packer:Online.t ->
  Spp_core.Instance.Release.t ->
  report

type violation =
  | Overlap of int * int  (** two tasks share an instant and a column *)
  | Early_start of int  (** ran before its release time *)
  | Out_of_strip of int  (** columns outside [0, k) *)
  | Too_narrow of int  (** fewer columns than the task's width needs *)
  | Chain_gap of int  (** segment chain broken, or total time <> height *)
  | Missing of int  (** never ran *)

val pp_violation : Format.formatter -> violation -> unit

(** [check inst report] independently validates the segment log against
    the instance: no two tasks overlap in time x columns, every task runs
    gaplessly for exactly its height starting at or after its release on
    enough in-strip columns. Empty result = sound run. *)
val check : Spp_core.Instance.Release.t -> report -> violation list

(** [to_placement inst report] is the run as an offline placement
    ([x = col_lo / k], [y = start]) — [Some] iff no task was ever moved,
    in which case {!Spp_core.Validate.check_release} is a second,
    geometry-level oracle on the same run. *)
val to_placement : Spp_core.Instance.Release.t -> report -> Spp_geom.Placement.t option
