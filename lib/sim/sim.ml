module Q = Spp_num.Rat
module I = Spp_core.Instance
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Metrics = Spp_obs.Metrics
module Trace = Spp_obs.Trace
module Field = Spp_obs.Field

type repack_event = {
  at : Q.t;
  frag_before : Q.t;
  frag_after : Q.t;
  moved : int;
  cells : int;
}

type report = {
  k : int;
  tasks : int;
  widened : int;
  makespan : Q.t;
  total_wait : Q.t;
  max_pending : int;
  placements : int;
  repacks : repack_event list;
  moves : int;
  cells_migrated : int;
  migration_cost : Q.t;
  frag_peak : Q.t;
  frag_mean : Q.t;
  segments : Strip_state.segment list;
}

let run_loop ?repack_threshold ~migration_cost ~exact_repack_max ~packer inst =
  let k = inst.I.Release.k in
  let arrivals, widened = Arrivals.of_instance inst in
  let arr = Array.of_list arrivals in
  let n = Array.length arr in
  let strip = Strip_state.create ~k in
  let ai = ref 0 in
  let pending = ref [] in
  let placements = ref 0 in
  let total_wait = ref Q.zero in
  let max_pending = ref 0 in
  let makespan = ref Q.zero in
  let repacks = ref [] in
  (* Time-weighted fragmentation: integrate the post-event value over the
     gap to the next event; peak samples the same post-event values. *)
  let prev_time = ref Q.zero in
  let prev_frag = ref Q.zero in
  let frag_acc = ref Q.zero in
  let frag_peak = ref Q.zero in
  let record_placements placed =
    List.iter
      (fun ((a : Arrivals.arrival), _col) ->
        incr placements;
        total_wait := Q.add !total_wait (Q.sub (Strip_state.now strip) a.Arrivals.release);
        let finish = Q.add (Strip_state.now strip) a.Arrivals.duration in
        if Q.compare finish !makespan > 0 then makespan := finish)
      placed
  in
  let step_at time =
    frag_acc := Q.add !frag_acc (Q.mul !prev_frag (Q.sub time !prev_time));
    prev_time := time;
    ignore (Strip_state.advance strip time : Strip_state.resident list);
    while !ai < n && Q.compare arr.(!ai).Arrivals.release time <= 0 do
      pending := !pending @ [ arr.(!ai) ];
      incr ai
    done;
    if List.length !pending > !max_pending then max_pending := List.length !pending;
    let placed, rest = Online.step packer strip ~pending:!pending ~more_arrivals:(!ai < n) in
    pending := rest;
    record_placements placed;
    (match repack_threshold with
    | Some threshold ->
      let frag = Strip_state.fragmentation strip in
      if Q.sign frag > 0 && Q.compare frag threshold >= 0 then begin
        let plan = Repack.best ~max_residents:exact_repack_max strip in
        if plan.Repack.moves <> [] then begin
          Strip_state.apply_moves strip plan.Repack.moves;
          repacks :=
            { at = time; frag_before = frag; frag_after = Strip_state.fragmentation strip;
              moved = List.length plan.Repack.moves; cells = plan.Repack.cells }
            :: !repacks;
          (* The consolidated gap may admit tasks that were just refused. *)
          let placed, rest =
            Online.step packer strip ~pending:!pending ~more_arrivals:(!ai < n)
          in
          pending := rest;
          record_placements placed
        end
      end
    | None -> ());
    let frag = Strip_state.fragmentation strip in
    prev_frag := frag;
    if Q.compare frag !frag_peak > 0 then frag_peak := frag
  in
  let rec drive () =
    let t_arr = if !ai < n then Some arr.(!ai).Arrivals.release else None in
    let t_fin =
      List.fold_left
        (fun acc (r : Strip_state.resident) ->
          match acc with
          | None -> Some r.Strip_state.finish
          | Some m -> if Q.compare r.Strip_state.finish m < 0 then Some r.Strip_state.finish else acc)
        None (Strip_state.residents strip)
    in
    match (t_arr, t_fin) with
    | None, None ->
      if !pending <> [] then failwith "Spp_sim.Sim: stalled with pending tasks and no events"
    | Some a, None -> step_at a; drive ()
    | None, Some f -> step_at f; drive ()
    | Some a, Some f ->
      step_at (if Q.compare a f <= 0 then a else f);
      drive ()
  in
  drive ();
  (* Close the fragmentation integral at the makespan (the strip is empty
     from the last finish on, and advance there retires nothing new). *)
  step_at (if Q.compare !makespan (Strip_state.now strip) > 0 then !makespan else Strip_state.now strip);
  let repacks = List.rev !repacks in
  let moves = List.fold_left (fun a e -> a + e.moved) 0 repacks in
  let cells = List.fold_left (fun a e -> a + e.cells) 0 repacks in
  let frag_mean =
    if Q.sign !makespan > 0 then Q.div !frag_acc !makespan else Q.zero
  in
  {
    k;
    tasks = n;
    widened;
    makespan = !makespan;
    total_wait = !total_wait;
    max_pending = !max_pending;
    placements = !placements;
    repacks;
    moves;
    cells_migrated = cells;
    migration_cost = Q.mul (Q.of_int cells) migration_cost;
    frag_peak = !frag_peak;
    frag_mean;
    segments = Strip_state.segments strip;
  }

let publish_metrics registry (r : report) =
  let c name by = Metrics.incr ~by (Metrics.counter registry name) in
  c "spp_sim_arrivals_total" r.tasks;
  c "spp_sim_placements_total" r.placements;
  c "spp_sim_repacks_total" (List.length r.repacks);
  c "spp_sim_moves_total" r.moves;
  c "spp_sim_cells_migrated_total" r.cells_migrated;
  Metrics.gauge_set (Metrics.gauge registry "spp_sim_makespan") (Q.to_float r.makespan);
  Metrics.gauge_set (Metrics.gauge registry "spp_sim_fragmentation_mean") (Q.to_float r.frag_mean)

let run ?registry ?trace ?repack_threshold ?(migration_cost = Q.one) ?(exact_repack_max = 7)
    ~packer inst =
  let go () = run_loop ?repack_threshold ~migration_cost ~exact_repack_max ~packer inst in
  let r =
    match trace with
    | None -> go ()
    | Some tr ->
      Trace.with_span tr ~parent:(Trace.root tr) "sim.run" (fun sp ->
          let r = go () in
          Trace.add_fields tr sp
            [
              ("packer", Field.String (Online.to_string packer));
              ("tasks", Field.Int r.tasks);
              ("makespan", Field.String (Q.to_string r.makespan));
              ("repacks", Field.Int (List.length r.repacks));
              ("cells_migrated", Field.Int r.cells_migrated);
            ];
          r)
  in
  (match registry with Some m -> publish_metrics m r | None -> ());
  r

type violation =
  | Overlap of int * int
  | Early_start of int
  | Out_of_strip of int
  | Too_narrow of int
  | Chain_gap of int
  | Missing of int

let pp_violation ppf = function
  | Overlap (a, b) -> Format.fprintf ppf "tasks %d and %d overlap in time and columns" a b
  | Early_start id -> Format.fprintf ppf "task %d starts before its release" id
  | Out_of_strip id -> Format.fprintf ppf "task %d occupies columns outside the strip" id
  | Too_narrow id -> Format.fprintf ppf "task %d runs on fewer columns than its width needs" id
  | Chain_gap id -> Format.fprintf ppf "task %d has a broken or mis-sized segment chain" id
  | Missing id -> Format.fprintf ppf "task %d never ran" id

let overlap_cols lo1 n1 lo2 n2 = lo1 < lo2 + n2 && lo2 < lo1 + n1

let check (inst : I.Release.t) (r : report) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (s : Strip_state.segment) ->
      Hashtbl.replace by_id s.Strip_state.seg_id
        (s :: (Option.value ~default:[] (Hashtbl.find_opt by_id s.Strip_state.seg_id))))
    r.segments;
  List.iter
    (fun (t : I.Release.task) ->
      let id = t.I.Release.rect.Rect.id in
      match Hashtbl.find_opt by_id id with
      | None | Some [] -> add (Missing id)
      | Some segs ->
        let segs =
          List.sort
            (fun (a : Strip_state.segment) b -> Q.compare a.Strip_state.seg_from b.Strip_state.seg_from)
            segs
        in
        let first = List.hd segs in
        let last = List.nth segs (List.length segs - 1) in
        if Q.compare first.Strip_state.seg_from t.I.Release.release < 0 then add (Early_start id);
        let chain_ok = ref true in
        let prev_to = ref first.Strip_state.seg_from in
        List.iter
          (fun (s : Strip_state.segment) ->
            if Q.compare s.Strip_state.seg_from !prev_to <> 0 then chain_ok := false;
            if Q.compare s.Strip_state.seg_to s.Strip_state.seg_from <= 0 then chain_ok := false;
            if s.Strip_state.seg_cols <> first.Strip_state.seg_cols then chain_ok := false;
            prev_to := s.Strip_state.seg_to)
          segs;
        let total = Q.sub last.Strip_state.seg_to first.Strip_state.seg_from in
        if not (Q.equal total t.I.Release.rect.Rect.h) then chain_ok := false;
        if not !chain_ok then add (Chain_gap id);
        if
          List.exists
            (fun (s : Strip_state.segment) ->
              s.Strip_state.seg_lo < 0 || s.Strip_state.seg_lo + s.Strip_state.seg_cols > r.k)
            segs
        then add (Out_of_strip id);
        if Q.compare (Q.of_ints first.Strip_state.seg_cols r.k) t.I.Release.rect.Rect.w < 0 then
          add (Too_narrow id))
    inst.I.Release.tasks;
  (* Pairwise time x column disjointness over the raw segment log. *)
  let segs = Array.of_list r.segments in
  let seen = Hashtbl.create 16 in
  for i = 0 to Array.length segs - 1 do
    for j = i + 1 to Array.length segs - 1 do
      let a = segs.(i) and b = segs.(j) in
      if a.Strip_state.seg_id <> b.Strip_state.seg_id then begin
        let time_overlap =
          Q.compare a.Strip_state.seg_from b.Strip_state.seg_to < 0
          && Q.compare b.Strip_state.seg_from a.Strip_state.seg_to < 0
        in
        if
          time_overlap
          && overlap_cols a.Strip_state.seg_lo a.Strip_state.seg_cols b.Strip_state.seg_lo
               b.Strip_state.seg_cols
        then begin
          let pair =
            (min a.Strip_state.seg_id b.Strip_state.seg_id,
             max a.Strip_state.seg_id b.Strip_state.seg_id)
          in
          if not (Hashtbl.mem seen pair) then begin
            Hashtbl.replace seen pair ();
            add (Overlap (fst pair, snd pair))
          end
        end
      end
    done
  done;
  List.rev !violations

let to_placement (inst : I.Release.t) (r : report) =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (s : Strip_state.segment) ->
      Hashtbl.replace by_id s.Strip_state.seg_id
        (s :: (Option.value ~default:[] (Hashtbl.find_opt by_id s.Strip_state.seg_id))))
    r.segments;
  let exception Moved in
  try
    let items =
      List.map
        (fun (t : I.Release.task) ->
          match Hashtbl.find_opt by_id t.I.Release.rect.Rect.id with
          | Some [ (s : Strip_state.segment) ] ->
            {
              Placement.rect = t.I.Release.rect;
              pos =
                { Placement.x = Q.of_ints s.Strip_state.seg_lo r.k; y = s.Strip_state.seg_from };
            }
          | _ -> raise Moved)
        inst.I.Release.tasks
    in
    Some (Placement.of_items items)
  with Moved -> None
