type t =
  | First_fit
  | Buffered of int

let default_lookahead = 4

let parse s =
  match String.split_on_char ':' s with
  | [ "first-fit" ] | [ "ff" ] -> Ok First_fit
  | [ "buffered" ] -> Ok (Buffered default_lookahead)
  | [ "buffered"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Buffered k)
    | _ -> Error (Printf.sprintf "bad lookahead in %S (want buffered:K, K >= 1)" s))
  | _ -> Error (Printf.sprintf "unknown packer %S (want first-fit or buffered[:K])" s)

let to_string = function
  | First_fit -> "first-fit"
  | Buffered k -> Printf.sprintf "buffered:%d" k

(* Place [candidates] in the given order, each at its first fit; a
   candidate that does not fit right now stays pending. *)
let place_each strip candidates =
  let placed = ref [] in
  let left = ref [] in
  List.iter
    (fun (a : Arrivals.arrival) ->
      match Strip_state.first_fit strip ~cols:a.Arrivals.cols with
      | Some col_lo ->
        Strip_state.place strip ~id:a.Arrivals.id ~cols:a.Arrivals.cols ~col_lo
          ~duration:a.Arrivals.duration;
        placed := (a, col_lo) :: !placed
      | None -> left := a :: !left)
    candidates;
  (List.rev !placed, List.rev !left)

let step policy strip ~pending ~more_arrivals =
  match policy with
  | First_fit -> place_each strip pending
  | Buffered b ->
    if more_arrivals && Strip_state.resident_count strip > 0 && List.length pending <= b then
      ([], pending)
    else begin
      (* Flush widest-first (ties by arrival order, which the sort's
         stability preserves); the leftovers keep arrival order so the
         next flush re-sorts from the same FIFO. *)
      let widest_first =
        List.stable_sort
          (fun (a : Arrivals.arrival) b -> compare b.Arrivals.cols a.Arrivals.cols)
          pending
      in
      let placed, _ = place_each strip widest_first in
      let placed_ids = List.map (fun ((a : Arrivals.arrival), _) -> a.Arrivals.id) placed in
      let left =
        List.filter (fun (a : Arrivals.arrival) -> not (List.mem a.Arrivals.id placed_ids)) pending
      in
      (placed, left)
    end
