module Prng = Spp_util.Prng
module Io = Spp_core.Io
module Prec = Spp_core.Instance.Prec
module G = Spp_workloads.Generators
module Adversarial = Spp_workloads.Adversarial
module Mutate = Spp_workloads.Mutate

type variant = [ `Prec | `Release | `Both ]

(* Sizes biased small: min of two uniforms keeps ~half the mass at n <= 7,
   where the exact-solver differential properties apply. *)
let small_biased rng hi = 1 + min (Prng.int rng hi) (Prng.int rng hi)

let shapes = [| `Layered; `Series_parallel; `Fork_join; `Chain; `Independent |]

let gen_prec rng =
  let params = Prng.split rng in
  let data = Prng.split rng in
  let n = small_biased params 24 in
  let k = Prng.int_in params 1 8 in
  let h_den = Prng.int_in params 1 4 in
  let die = Prng.int params 100 in
  if die < 50 then G.random_prec data ~n ~k ~h_den ~shape:(Prng.choose params shapes)
  else if die < 75 then G.random_uniform_prec data ~n ~k ~shape:(Prng.choose params shapes)
  else if die < 90 then begin
    (* Tall rectangles (heights up to 3): legal only without the release
       variant's height cap, so DC must handle bands taller than 1. *)
    let rects = G.random_rects_wide data ~n ~k ~h_den ~max_h_num:(3 * h_den) in
    let ids = List.map (fun (r : Spp_geom.Rect.t) -> r.Spp_geom.Rect.id) rects in
    let dag =
      if Prng.bool params then
        G.layered_dag data ~ids ~layers:(Prng.int_in params 2 4) ~p:(Prng.float_in params 0.2 0.6)
      else G.series_parallel data ~ids
    in
    Prec.make rects dag
  end
  else begin
    let eps_den = Prng.int_in params 8 1000 in
    if Prng.bool params then Adversarial.fig1 ~k:(Prng.int_in params 1 4) ~eps_den
    else Adversarial.fig2 ~k:(Prng.int_in params 1 5) ~eps_den
  end

let gen_release rng =
  let params = Prng.split rng in
  let data = Prng.split rng in
  let n = small_biased params 16 in
  let k = Prng.int_in params 2 5 in
  let h_den = Prng.int_in params 2 4 in
  let r_den = Prng.int_in params 1 4 in
  if Prng.int params 100 < 70 then
    G.random_release data ~n ~k ~h_den ~r_den ~load:(Prng.float_in params 0.5 2.0)
  else
    G.bursty_release data ~n ~k ~h_den ~r_den ~burst_len:(Prng.int_in params 2 5)
      ~idle_gap:(Prng.float_in params 0.5 3.0)

let generate variant rng =
  match variant with
  | `Prec -> Io.Prec (gen_prec rng)
  | `Release -> Io.Release (gen_release rng)
  | `Both ->
    if Prng.int rng 100 < 55 then Io.Prec (gen_prec (Prng.split rng))
    else Io.Release (gen_release (Prng.split rng))

let shrink = function
  | Io.Prec inst -> Seq.map (fun i -> Io.Prec i) (Mutate.shrink_prec inst)
  | Io.Release inst -> Seq.map (fun i -> Io.Release i) (Mutate.shrink_release inst)

let print = function
  | Io.Prec inst -> Io.prec_to_string inst
  | Io.Release inst -> Io.release_to_string inst

let parsed ~variant = { Runner.generate = generate variant; shrink; print }
