(** Arbitrary instances: generators with shrinkers over {!Spp_core.Io.parsed}.

    Generation is family-based so every property family gets exercised:
    precedence cases mix random DAG shapes, uniform-height instances
    (Section 2.2's regime), tall rectangles (heights > 1, legal only in the
    precedence variant) and the paper's adversarial Figure 1/2 families;
    release cases mix Poisson-like and bursty arrivals. Sizes are biased
    small so the exact-solver differential properties fire often.

    Each phase of generation draws from its own {!Spp_util.Prng.split}
    child stream, so changing one phase (say, the size draw) never shifts
    another phase's draws — shrink-and-replay stays aligned with what the
    original seed generated. *)

type variant = [ `Prec | `Release | `Both ]

(** [parsed ~variant] generates (and shrinks, via {!Spp_workloads.Mutate})
    instances of the given variant; [`Both] mixes the two. Printing uses
    the {!Spp_core.Io} file format, so every counterexample is a parseable
    instance file. *)
val parsed : variant:variant -> Spp_core.Io.parsed Runner.arbitrary
