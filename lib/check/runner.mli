(** A small QCheck-style property runner with counterexample shrinking.

    Why not QCheck itself: the harness must share one seeding discipline
    with every other reproducible artefact in this repository
    (the xoshiro generator in {!Spp_util.Prng}), must expose {e per-case replay
    seeds} that the [spp fuzz] CLI can print, persist and replay, and must
    keep generation and shrinking deterministic across OCaml versions.
    The runner is deliberately tiny: values are generated from an
    {!arbitrary}, each property is evaluated on each value, and the first
    failure per property is greedily shrunk (first failing candidate,
    repeat) to a local minimum.

    Determinism contract: a run is a pure function of [(seed, cases,
    arbitrary, properties)]. Case [i] is generated from its own derived
    [case_seed], so any failure can be reproduced in isolation from just
    that integer — the replay seed printed in failure reports. *)

type result =
  | Pass
  | Skip  (** property not applicable to this value (guards, variants) *)
  | Fail of string  (** human-readable violation description *)

type 'a arbitrary = {
  generate : Spp_util.Prng.t -> 'a;
  shrink : 'a -> 'a Seq.t;  (** candidates, most aggressive first *)
  print : 'a -> string;
}

type 'a property = {
  name : string;  (** e.g. ["sound.dc"] — dot-separated family.algo *)
  doc : string;  (** the theorem or invariant being machine-checked *)
  tags : string list;  (** algorithm names, for [--algos] filtering *)
  check : 'a -> result;
}

type 'a failure = {
  property : string;
  case_seed : int;  (** replay seed: regenerate with [Prng.create case_seed] *)
  case_index : int;  (** position in the run (diagnostic only) *)
  original : 'a;
  minimized : 'a;
  message : string;  (** [Fail] message of the {e minimized} value *)
  shrink_steps : int;  (** successful shrink steps taken *)
  shrink_tried : int;  (** shrink candidates evaluated *)
}

type 'a report = {
  run_seed : int;
  cases : int;  (** values generated *)
  checks : int;  (** property evaluations that returned [Pass] or [Fail] *)
  skips : int;
  per_property : (string * int) list;  (** non-skip evaluations per property *)
  failures : 'a failure list;  (** at most one per property, in name order *)
  elapsed_ms : float;
}

(** [run ~seed arb props] generates values and evaluates every property on
    each. A property that fails is shrunk immediately and excluded from
    the rest of the run (one minimized counterexample per property).

    [cases] (default 100) bounds the number of generated values;
    [deadline_ms] (wall clock, measured on {!Spp_util.Clock}) stops
    generation early — whichever limit is hit first wins. [max_shrink_steps]
    (default 500) and [max_shrink_tries] (default 10_000) bound the shrink
    loop. [on_case] is a progress callback (case index) for CLI spinners. *)
val run :
  ?cases:int ->
  ?deadline_ms:float ->
  ?max_shrink_steps:int ->
  ?max_shrink_tries:int ->
  ?on_case:(int -> unit) ->
  seed:int ->
  'a arbitrary ->
  'a property list ->
  'a report

(** [replay ~case_seed arb props] re-runs every property on the single
    value generated from [case_seed] — the deterministic replay of one
    reported failure, with the same shrinking on failure. *)
val replay :
  ?max_shrink_steps:int ->
  ?max_shrink_tries:int ->
  case_seed:int ->
  'a arbitrary ->
  'a property list ->
  'a report

(** [shrink_to_minimum arb prop value] is the greedy minimisation used on
    failures, exposed for tests: repeatedly replaces [value] with its
    first shrink candidate that still fails [prop]. Returns
    [(minimized, message, steps, tried)].
    @raise Invalid_argument if [prop.check value] does not return [Fail]. *)
val shrink_to_minimum :
  ?max_shrink_steps:int ->
  ?max_shrink_tries:int ->
  'a arbitrary ->
  'a property ->
  'a ->
  'a * string * int * int
