module Prng = Spp_util.Prng
module Clock = Spp_util.Clock

type result = Pass | Skip | Fail of string

type 'a arbitrary = {
  generate : Prng.t -> 'a;
  shrink : 'a -> 'a Seq.t;
  print : 'a -> string;
}

type 'a property = {
  name : string;
  doc : string;
  tags : string list;
  check : 'a -> result;
}

type 'a failure = {
  property : string;
  case_seed : int;
  case_index : int;
  original : 'a;
  minimized : 'a;
  message : string;
  shrink_steps : int;
  shrink_tried : int;
}

type 'a report = {
  run_seed : int;
  cases : int;
  checks : int;
  skips : int;
  per_property : (string * int) list;
  failures : 'a failure list;
  elapsed_ms : float;
}

(* A property that raises has been falsified just as surely as one that
   returns Fail: solvers must not crash on valid instances. *)
let eval prop v =
  match prop.check v with
  | r -> r
  | exception e -> Fail (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e))

let shrink_to_minimum ?(max_shrink_steps = 500) ?(max_shrink_tries = 10_000) arb prop value =
  let message =
    match eval prop value with
    | Fail msg -> msg
    | Pass | Skip -> invalid_arg "Runner.shrink_to_minimum: value does not fail the property"
  in
  let tried = ref 0 in
  let rec go value message steps =
    if steps >= max_shrink_steps then (value, message, steps)
    else begin
      (* First candidate that still fails wins; Skip and Pass candidates are
         rejected (a shrink must preserve the violation, not just shrink). *)
      let rec first seq =
        if !tried >= max_shrink_tries then None
        else
          match seq () with
          | Seq.Nil -> None
          | Seq.Cons (cand, rest) -> (
            incr tried;
            match eval prop cand with
            | Fail msg -> Some (cand, msg)
            | Pass | Skip -> first rest)
      in
      match first (arb.shrink value) with
      | None -> (value, message, steps)
      | Some (cand, msg) -> go cand msg (steps + 1)
    end
  in
  let minimized, message, steps = go value message 0 in
  (minimized, message, steps, !tried)

let run_cases ?max_shrink_steps ?max_shrink_tries ?(on_case = fun _ -> ()) ~run_seed ~next_seed
    ~max_cases ?deadline_ms arb props =
  let t0 = Clock.now_ms () in
  let counts = Hashtbl.create 16 in
  let bump name = Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)) in
  let checks = ref 0 and skips = ref 0 and cases = ref 0 in
  let failures = ref [] in
  let active = ref props in
  let expired () =
    match deadline_ms with None -> false | Some d -> Clock.elapsed_ms t0 >= d
  in
  while !cases < max_cases && !active <> [] && not (expired ()) do
    let case_index = !cases in
    let case_seed = next_seed () in
    on_case case_index;
    let value = arb.generate (Prng.create case_seed) in
    active :=
      List.filter
        (fun prop ->
          match eval prop value with
          | Skip ->
            incr skips;
            true
          | Pass ->
            incr checks;
            bump prop.name;
            true
          | Fail _ ->
            incr checks;
            bump prop.name;
            let minimized, message, shrink_steps, shrink_tried =
              shrink_to_minimum ?max_shrink_steps ?max_shrink_tries arb prop value
            in
            failures :=
              { property = prop.name; case_seed; case_index; original = value; minimized;
                message; shrink_steps; shrink_tried }
              :: !failures;
            false)
        !active;
    incr cases
  done;
  let per_property =
    List.map (fun p -> (p.name, Option.value ~default:0 (Hashtbl.find_opt counts p.name))) props
  in
  {
    run_seed;
    cases = !cases;
    checks = !checks;
    skips = !skips;
    per_property;
    failures = List.sort (fun a b -> compare a.property b.property) !failures;
    elapsed_ms = Clock.elapsed_ms t0;
  }

let run ?(cases = 100) ?deadline_ms ?max_shrink_steps ?max_shrink_tries ?on_case ~seed arb props =
  (* A dedicated stream yields each case's replay seed, so case i's value
     depends only on (seed, i) — never on how earlier cases shrank. *)
  let seed_rng = Prng.create seed in
  run_cases ?max_shrink_steps ?max_shrink_tries ?on_case ~run_seed:seed
    ~next_seed:(fun () -> Prng.int seed_rng max_int)
    ~max_cases:cases ?deadline_ms arb props

let replay ?max_shrink_steps ?max_shrink_tries ~case_seed arb props =
  run_cases ?max_shrink_steps ?max_shrink_tries ~run_seed:case_seed
    ~next_seed:(fun () -> case_seed)
    ~max_cases:1 arb props
