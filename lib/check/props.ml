module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag
module Io = Spp_core.Io
module I = Spp_core.Instance
module Validate = Spp_core.Validate
module LB = Spp_core.Lower_bounds
module Mutate = Spp_workloads.Mutate
open Runner

type t = Io.parsed Runner.property

(* ------------------------------------------------------------------ *)
(* Helpers *)

let on_prec check = function Io.Prec inst -> check inst | Io.Release _ -> Skip
let on_release check = function Io.Release inst -> check inst | Io.Prec _ -> Skip

let pp_violations vs =
  let shown = List.filteri (fun i _ -> i < 3) vs in
  Printf.sprintf "%d violation(s): %s" (List.length vs)
    (String.concat "; " (List.map (Format.asprintf "%a" Validate.pp_violation) shown))

let prec_valid inst p =
  match Validate.check_prec inst p with [] -> Pass | vs -> Fail (pp_violations vs)

let release_valid inst p =
  match Validate.check_release inst p with [] -> Pass | vs -> Fail (pp_violations vs)

let qs = Q.to_string

let all_pass checks =
  let rec go = function
    | [] -> Pass
    | (true, _) :: rest -> go rest
    | (false, msg) :: _ -> Fail (msg ())
  in
  go checks

(* Size gates for the exponential reference solvers: generous enough to
   fire on roughly half the generated cases, small enough that a 2000-case
   run stays in CI budget. The exact gate rides on Normal_bb's dominance
   table and bounds: instances up to n = 9 that formerly ran for minutes
   now finish well inside the (also lowered) fuse. *)
let exact_gate = 9
let uniform_dp_gate = 9
let aptas_gate_n = 12
let aptas_gate_k = 4
let engine_gate = 8

(* Wall-clock fuse for the exponential reference solvers: Normal_bb
   branches over subset-sum grids (up to 2^n distinct coordinates per
   axis), so all-distinct-rational instances can still blow up in the
   worst case. A tripped fuse makes the property Skip — heuristic
   soundness is still checked by the sound.* family, and the skip shows
   up in the per-property counts rather than stalling a run. *)
let exact_budget_ms = 500.

let with_exact_budget f =
  let cancel = Spp_util.Cancel.with_deadline_ms exact_budget_ms in
  try f cancel with Spp_util.Cancel.Cancelled -> Skip

let prop name doc tags check = { name; doc; tags; check }

(* A deterministic per-case seed: hash of the instance's canonical text.
   Shared by the stream-replay and numeric-differential properties. *)
let stream_seed_of parsed =
  let printed =
    match parsed with
    | Io.Prec inst -> Io.prec_to_string inst
    | Io.Release inst -> Io.release_to_string inst
  in
  Int32.to_int (Spp_util.Crc32.digest printed) land 0x3FFFFFFF

(* ------------------------------------------------------------------ *)
(* Soundness *)

let sound_dc =
  prop "sound.dc" "DC output passes Validate.check_prec (Algorithm 1)" [ "prec"; "dc" ]
    (on_prec (fun inst -> prec_valid inst (fst (Spp_core.Dc.pack inst))))

let sound_ls_prec =
  prop "sound.ls.prec" "greedy list scheduler respects geometry and the DAG" [ "prec"; "ls" ]
    (on_prec (fun inst -> prec_valid inst (Spp_core.List_schedule.prec inst)))

let uniform_only check inst =
  match Spp_core.Uniform.uniform_height inst with None -> Skip | Some c -> check c inst

let sound_uniform_f =
  prop "sound.uniform.f" "algorithm F (next-fit shelf) output is valid" [ "prec"; "f" ]
    (on_prec (uniform_only (fun _ inst -> prec_valid inst (fst (Spp_core.Uniform.next_fit_shelf inst)))))

let sound_uniform_pff =
  prop "sound.uniform.pff" "precedence first-fit output is valid" [ "prec"; "pff" ]
    (on_prec (uniform_only (fun _ inst -> prec_valid inst (fst (Spp_core.Uniform.prec_first_fit inst)))))

let sound_uniform_wave =
  prop "sound.uniform.wave" "wave FFD output is valid" [ "prec"; "wave" ]
    (on_prec (uniform_only (fun _ inst -> prec_valid inst (fst (Spp_core.Uniform.wave_ffd inst)))))

let sound_ls_release =
  prop "sound.ls.release" "release list scheduler respects geometry and releases"
    [ "release"; "ls" ]
    (on_release (fun inst -> release_valid inst (Spp_core.List_schedule.release inst)))

let sound_shelf =
  prop "sound.shelf" "release shelf heuristic (next-fit) output is valid" [ "release"; "shelf" ]
    (on_release (fun inst -> release_valid inst (fst (Spp_core.Release_shelf.pack inst))))

let sound_shelf_ff =
  prop "sound.shelf.ff" "release shelf heuristic (first-fit) output is valid"
    [ "release"; "shelf" ]
    (on_release (fun inst -> release_valid inst (fst (Spp_core.Release_shelf.pack_first_fit inst))))

(* ------------------------------------------------------------------ *)
(* Guarantee certification *)

let guar_dc_thm23 =
  prop "guar.dc.thm2.3" "DC height <= log2(n+1)*F + 2*AREA (Theorem 2.3 induction bound)"
    [ "prec"; "dc" ]
    (on_prec (fun inst ->
         let h = Q.to_float (Placement.height (fst (Spp_core.Dc.pack inst))) in
         let bound = Spp_core.Dc.theorem_2_3_bound inst in
         if h <= bound +. 1e-9 then Pass
         else Fail (Printf.sprintf "DC height %.6f exceeds Theorem 2.3 bound %.6f" h bound)))

let guar_prec_lb =
  prop "guar.prec.lb" "DC and LS heights at or above max(AREA, F) (Section 2 lower bounds)"
    [ "prec"; "dc"; "ls" ]
    (on_prec (fun inst ->
         let lb = LB.prec inst in
         let dc = Placement.height (fst (Spp_core.Dc.pack inst)) in
         let ls = Placement.height (Spp_core.List_schedule.prec inst) in
         all_pass
           [ (Q.compare dc lb >= 0, fun () -> Printf.sprintf "DC height %s below LB %s" (qs dc) (qs lb));
             (Q.compare ls lb >= 0, fun () -> Printf.sprintf "LS height %s below LB %s" (qs ls) (qs lb)) ]))

let guar_uniform_f_thm26 =
  prop "guar.uniform.f.thm2.6"
    "algorithm F: skips <= longest path (Lemma 2.5) and height <= 2*AREA + F(S) + c (Theorem 2.6 accounting)"
    [ "prec"; "f" ]
    (on_prec
       (uniform_only (fun c inst ->
            let p, stats = Spp_core.Uniform.next_fit_shelf inst in
            let area = LB.area inst and cp = LB.critical_path inst in
            let bound = Q.add (Q.add (Q.mul_int area 2) cp) c in
            let h = Placement.height p in
            let path = Dag.longest_path_length inst.I.Prec.dag in
            all_pass
              [ (stats.Spp_core.Uniform.skips <= path,
                 fun () -> Printf.sprintf "%d skips exceed longest path %d (Lemma 2.5)"
                     stats.Spp_core.Uniform.skips path);
                (Q.compare h bound <= 0,
                 fun () -> Printf.sprintf "F height %s exceeds 2*AREA + F + c = %s" (qs h) (qs bound)) ])))

let guar_release_lb =
  prop "guar.release.lb" "release heuristics at or above max(AREA, max r+h) (Section 3 bounds)"
    [ "release"; "ls"; "shelf" ]
    (on_release (fun inst ->
         let lb = LB.release inst in
         let ls = Placement.height (Spp_core.List_schedule.release inst) in
         let sh = Placement.height (fst (Spp_core.Release_shelf.pack inst)) in
         all_pass
           [ (Q.compare ls lb >= 0, fun () -> Printf.sprintf "LS height %s below LB %s" (qs ls) (qs lb));
             (Q.compare sh lb >= 0, fun () -> Printf.sprintf "shelf height %s below LB %s" (qs sh) (qs lb)) ]))

let guar_aptas =
  prop "guar.aptas.thm3.5"
    "APTAS: valid, height <= fractional + occurrences (Lemma 3.4), occurrences within the \
     Lemma 3.3 cap, certified lower_bound below every valid packing, no fallback rects"
    [ "release"; "aptas" ]
    (on_release (fun inst ->
         if I.Release.size inst > aptas_gate_n || inst.I.Release.k > aptas_gate_k then Skip
         else begin
           let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
           match Validate.check_release inst res.Spp_core.Aptas.placement with
           | _ :: _ as vs -> Fail (pp_violations vs)
           | [] ->
             let open Spp_core.Aptas in
             let ls = Placement.height (Spp_core.List_schedule.release inst) in
             let sh = Placement.height (fst (Spp_core.Release_shelf.pack inst)) in
             let rounding = Q.add res.fractional_height (Q.of_int res.occurrences) in
             all_pass
               [ (Q.compare res.height rounding <= 0,
                  fun () -> Printf.sprintf "height %s exceeds fractional + occurrences = %s"
                      (qs res.height) (qs rounding));
                 (res.occurrences <= res.max_occurrences,
                  fun () -> Printf.sprintf "%d occurrences exceed the (W+1)(R+1) cap %d"
                      res.occurrences res.max_occurrences);
                 (res.fallback_rects = 0,
                  fun () -> Printf.sprintf "%d rects fell through to the NFDH safety net"
                      res.fallback_rects);
                 (Q.compare res.lower_bound res.height <= 0,
                  fun () -> Printf.sprintf "certified LB %s above own height %s"
                      (qs res.lower_bound) (qs res.height));
                 (Q.compare res.lower_bound ls <= 0,
                  fun () -> Printf.sprintf "certified LB %s above LS height %s"
                      (qs res.lower_bound) (qs ls));
                 (Q.compare res.lower_bound sh <= 0,
                  fun () -> Printf.sprintf "certified LB %s above shelf height %s"
                      (qs res.lower_bound) (qs sh)) ]
         end))

(* ------------------------------------------------------------------ *)
(* Differential: exact solvers as ground truth on small instances *)

let diff_exact_prec =
  prop "diff.exact.prec"
    "on n <= 9: Normal_bb optimum is valid, sandwiched by the lower bounds, never above \
     order-search/DC/LS, and equal to the uniform DP when heights are uniform"
    [ "prec"; "bb"; "order"; "dc"; "ls" ]
    (on_prec (fun inst ->
         if I.Prec.size inst > exact_gate then Skip
         else with_exact_budget @@ fun cancel ->
           let bb = Spp_exact.Normal_bb.solve ~cancel inst in
           let opt = bb.Spp_exact.Normal_bb.height in
           match Validate.check_prec inst bb.Spp_exact.Normal_bb.placement with
           | _ :: _ as vs -> Fail ("optimal placement invalid: " ^ pp_violations vs)
           | [] ->
             let lb = LB.prec inst in
             let order =
               (Spp_exact.Order_search.best_prec ~cancel inst).Spp_exact.Order_search.height
             in
             let dc = Placement.height (fst (Spp_core.Dc.pack inst)) in
             let ls = Placement.height (Spp_core.List_schedule.prec inst) in
             let uniform_agrees =
               match Spp_core.Uniform.uniform_height inst with
               | None -> (true, fun () -> "")
               | Some _ ->
                 let dp = Spp_exact.Prec_binpack.min_height inst in
                 ( Q.equal dp opt,
                   fun () -> Printf.sprintf "uniform DP optimum %s /= normal-position optimum %s"
                       (qs dp) (qs opt) )
             in
             all_pass
               [ (Q.compare opt lb >= 0,
                  fun () -> Printf.sprintf "exact OPT %s below lower bound %s" (qs opt) (qs lb));
                 (Q.compare opt order <= 0,
                  fun () -> Printf.sprintf "exact OPT %s above order-search height %s" (qs opt) (qs order));
                 (Q.compare opt dc <= 0,
                  fun () -> Printf.sprintf "exact OPT %s above DC height %s" (qs opt) (qs dc));
                 (Q.compare opt ls <= 0,
                  fun () -> Printf.sprintf "exact OPT %s above LS height %s" (qs opt) (qs ls));
                 uniform_agrees ]))

let diff_uniform_dp =
  prop "diff.uniform.dp"
    "on uniform heights, n <= 9: the GGJY DP optimum lower-bounds F/PFF/wave and achieves \
     the absolute factor 3 of Theorem 2.6"
    [ "prec"; "f"; "pff"; "wave" ]
    (on_prec
       (uniform_only (fun _ inst ->
            if I.Prec.size inst > uniform_dp_gate then Skip
            else begin
              let opt = Spp_exact.Prec_binpack.min_height inst in
              let f = Placement.height (fst (Spp_core.Uniform.next_fit_shelf inst)) in
              let pff = Placement.height (fst (Spp_core.Uniform.prec_first_fit inst)) in
              let wave = Placement.height (fst (Spp_core.Uniform.wave_ffd inst)) in
              all_pass
                [ (Q.compare opt f <= 0,
                   fun () -> Printf.sprintf "DP optimum %s above F height %s" (qs opt) (qs f));
                  (Q.compare opt pff <= 0,
                   fun () -> Printf.sprintf "DP optimum %s above PFF height %s" (qs opt) (qs pff));
                  (Q.compare opt wave <= 0,
                   fun () -> Printf.sprintf "DP optimum %s above wave height %s" (qs opt) (qs wave));
                  (Q.compare f (Q.mul_int opt 3) <= 0,
                   fun () -> Printf.sprintf "F height %s exceeds 3*OPT = %s (Theorem 2.6)"
                       (qs f) (qs (Q.mul_int opt 3))) ]
            end)))

let diff_exact_release =
  prop "diff.exact.release"
    "on n <= 9: best bottom-left release packing is valid, above the Section 3 lower bound, \
     and never above LS/shelf"
    [ "release"; "order"; "ls"; "shelf" ]
    (on_release (fun inst ->
         if I.Release.size inst > exact_gate then Skip
         else with_exact_budget @@ fun cancel ->
           let best = Spp_exact.Order_search.best_release ~cancel inst in
           let h = best.Spp_exact.Order_search.height in
           match Validate.check_release inst best.Spp_exact.Order_search.placement with
           | _ :: _ as vs -> Fail ("order-search placement invalid: " ^ pp_violations vs)
           | [] ->
             let lb = LB.release inst in
             let ls = Placement.height (Spp_core.List_schedule.release inst) in
             let sh = Placement.height (fst (Spp_core.Release_shelf.pack inst)) in
             all_pass
               [ (Q.compare h lb >= 0,
                  fun () -> Printf.sprintf "best bottom-left %s below lower bound %s" (qs h) (qs lb));
                 (Q.compare h ls <= 0,
                  fun () -> Printf.sprintf "best bottom-left %s above LS height %s" (qs h) (qs ls));
                 (Q.compare h sh <= 0,
                  fun () -> Printf.sprintf "best bottom-left %s above shelf height %s" (qs h) (qs sh)) ]))

let sound_bb_parallel =
  prop "sound.bb.parallel"
    "on n <= 9: the parallel normal-position B&B returns the identical optimal height with 1 \
     and 4 workers (shared-incumbent pruning is schedule-independent)"
    [ "prec"; "bb" ]
    (on_prec (fun inst ->
         if I.Prec.size inst > exact_gate then Skip
         else with_exact_budget @@ fun cancel ->
           let h1 = (Spp_exact.Normal_bb.solve ~cancel ~workers:1 inst).Spp_exact.Normal_bb.height in
           let h4 = (Spp_exact.Normal_bb.solve ~cancel ~workers:4 inst).Spp_exact.Normal_bb.height in
           if Q.equal h1 h4 then Pass
           else Fail (Printf.sprintf "1-worker optimum %s /= 4-worker optimum %s" (qs h1) (qs h4))))

(* ------------------------------------------------------------------ *)
(* Differential: fast numeric tower vs the reference implementation *)

(* Deterministic operand stream for num.diff: an xorshift PRNG seeded from
   the instance text, mixed with hand-picked edge operands sitting on the
   small/big representation boundary (limb multiples, +/-max_int, near
   min_int), negatives and zero. *)
let num_edge_operands =
  [| 0; 1; -1; 2; -2; 3; 32767; 32768; -32768; -32769; (1 lsl 30) - 1; 1 lsl 30;
     -(1 lsl 30); (1 lsl 45) - 1; 1 lsl 45; -(1 lsl 45); max_int; -max_int;
     max_int - 1; min_int + 1; 1000000007; -999999937 |]

let num_diff =
  prop "num.diff"
    "fast bigint/rational arithmetic (small-int representation, gcd fast paths) agrees \
     operation-for-operation with the reference sign+magnitude implementation over a seeded \
     operand stream covering limb boundaries, negatives and zero"
    [ "prec"; "release"; "num" ]
    (fun parsed ->
      let module B = Spp_num.Bigint in
      let module RB = Spp_num.Reference.Bigint in
      let module RR = Spp_num.Reference.Rat in
      let state = ref (stream_seed_of parsed lor 1) in
      let next () =
        (* xorshift64*; positive 62-bit output. *)
        let x = !state in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 7) in
        let x = x lxor (x lsl 17) in
        state := x;
        (x * 0x2545F4914F6CDD1D) land max_int
      in
      let operand () =
        match next () mod 5 with
        | 0 -> string_of_int num_edge_operands.(next () mod Array.length num_edge_operands)
        | 1 -> string_of_int (next () mod 97 - 48)
        | 2 -> string_of_int (next () - (max_int / 2))
        | _ ->
          (* Multi-limb decimal, up to ~40 digits, random sign. *)
          let len = 1 + (next () mod 40) in
          let b = Buffer.create (len + 1) in
          if next () land 1 = 1 then Buffer.add_char b '-';
          Buffer.add_char b (Char.chr (Char.code '1' + (next () mod 9)));
          for _ = 2 to len do
            Buffer.add_char b (Char.chr (Char.code '0' + (next () mod 10)))
          done;
          Buffer.contents b
      in
      let failure = ref None in
      let check op expect got =
        if !failure = None && expect <> got then
          failure := Some (Printf.sprintf "%s: fast %S /= reference %S" op got expect)
      in
      (let i = ref 0 in
       while !failure = None && !i < 32 do
         incr i;
         let sx = operand () and sy = operand () in
         let x = B.of_string sx and y = B.of_string sy in
         let rx = RB.of_string sx and ry = RB.of_string sy in
         let ctx op = Printf.sprintf "%s on (%s, %s)" op sx sy in
         check (ctx "Bigint.add") (RB.to_string (RB.add rx ry)) (B.to_string (B.add x y));
         check (ctx "Bigint.sub") (RB.to_string (RB.sub rx ry)) (B.to_string (B.sub x y));
         check (ctx "Bigint.mul") (RB.to_string (RB.mul rx ry)) (B.to_string (B.mul x y));
         check (ctx "Bigint.compare")
           (string_of_int (RB.compare rx ry)) (string_of_int (B.compare x y));
         check (ctx "Bigint.gcd") (RB.to_string (RB.gcd rx ry)) (B.to_string (B.gcd x y));
         if not (B.is_zero y) then begin
           let q, r = B.divmod x y and rq, rr = RB.divmod rx ry in
           check (ctx "Bigint.divmod.q") (RB.to_string rq) (B.to_string q);
           check (ctx "Bigint.divmod.r") (RB.to_string rr) (B.to_string r)
         end;
         (* Rationals from the same operands (nonzero denominators). *)
         let sd = operand () and se = operand () in
         let d = B.of_string sd and e = B.of_string se in
         if not (B.is_zero d || B.is_zero e) then begin
           let a = Q.make x d and b = Q.make y e in
           let ra = RR.make rx (RB.of_string sd) and rb = RR.make ry (RB.of_string se) in
           let ctx op = Printf.sprintf "%s on (%s/%s, %s/%s)" op sx sd sy se in
           (* The den > 0, coprime invariant, through the fast constructors. *)
           if !failure = None && B.sign (Q.den a) <= 0 then
             failure := Some (ctx "Rat.make: non-positive denominator");
           if !failure = None && not (B.equal (B.gcd (Q.num a) (Q.den a)) B.one) then
             failure := Some (ctx "Rat.make: non-coprime parts");
           check (ctx "Rat.add") (RR.to_string (RR.add ra rb)) (Q.to_string (Q.add a b));
           check (ctx "Rat.sub") (RR.to_string (RR.sub ra rb)) (Q.to_string (Q.sub a b));
           check (ctx "Rat.mul") (RR.to_string (RR.mul ra rb)) (Q.to_string (Q.mul a b));
           check (ctx "Rat.compare")
             (string_of_int (RR.compare ra rb)) (string_of_int (Q.compare a b));
           check (ctx "Rat.floor") (RB.to_string (RR.floor ra)) (B.to_string (Q.floor a));
           check (ctx "Rat.ceil") (RB.to_string (RR.ceil ra)) (B.to_string (Q.ceil a));
           if not (RR.is_zero rb) then
             check (ctx "Rat.div") (RR.to_string (RR.div ra rb)) (Q.to_string (Q.div a b))
         end
       done);
      match !failure with None -> Pass | Some msg -> Fail msg)

(* ------------------------------------------------------------------ *)
(* Metamorphic *)

let meta_relabel =
  prop "meta.relabel"
    "strictly monotone id relabeling preserves DC, LS and F heights exactly (all tie-breaks \
     are order-based)"
    [ "prec"; "dc"; "ls"; "f" ]
    (on_prec (fun inst ->
         let inst' = Mutate.relabel_prec ~f:(fun id -> (2 * id) + 3) inst in
         let dc = Placement.height (fst (Spp_core.Dc.pack inst))
         and dc' = Placement.height (fst (Spp_core.Dc.pack inst')) in
         let ls = Placement.height (Spp_core.List_schedule.prec inst)
         and ls' = Placement.height (Spp_core.List_schedule.prec inst') in
         let f_pair =
           match Spp_core.Uniform.uniform_height inst with
           | None -> None
           | Some _ ->
             Some
               ( Placement.height (fst (Spp_core.Uniform.next_fit_shelf inst)),
                 Placement.height (fst (Spp_core.Uniform.next_fit_shelf inst')) )
         in
         all_pass
           ([ (Q.equal dc dc', fun () -> Printf.sprintf "DC height changed %s -> %s" (qs dc) (qs dc'));
              (Q.equal ls ls', fun () -> Printf.sprintf "LS height changed %s -> %s" (qs ls) (qs ls')) ]
           @
           match f_pair with
           | None -> []
           | Some (f, f') ->
             [ (Q.equal f f', fun () -> Printf.sprintf "F height changed %s -> %s" (qs f) (qs f')) ])))

let meta_edge_drop =
  prop "meta.edge.drop"
    "removing a precedence edge never raises the critical path, and never raises the exact \
     optimum on n <= 9"
    [ "prec"; "bb" ]
    (on_prec (fun inst ->
         match Dag.edges inst.I.Prec.dag with
         | [] -> Skip
         | e :: _ ->
           let inst' = Mutate.drop_edge inst e in
           let cp = LB.critical_path inst and cp' = LB.critical_path inst' in
           let exact_mono =
             if I.Prec.size inst > exact_gate then (true, fun () -> "")
             else begin
               (* The critical-path check below is cheap and still runs when
                  the exact solver blows its fuse on this pair. *)
               let cancel = Spp_util.Cancel.with_deadline_ms exact_budget_ms in
               match
                 ( (Spp_exact.Normal_bb.solve ~cancel inst).Spp_exact.Normal_bb.height,
                   (Spp_exact.Normal_bb.solve ~cancel inst').Spp_exact.Normal_bb.height )
               with
               | h, h' ->
                 ( Q.compare h' h <= 0,
                   fun () -> Printf.sprintf "OPT rose from %s to %s after dropping edge (%d,%d)"
                       (qs h) (qs h') (fst e) (snd e) )
               | exception Spp_util.Cancel.Cancelled -> (true, fun () -> "")
             end
           in
           all_pass
             [ (Q.compare cp' cp <= 0,
                fun () -> Printf.sprintf "critical path rose from %s to %s after dropping (%d,%d)"
                    (qs cp) (qs cp') (fst e) (snd e));
               exact_mono ]))

let meta_release_slacken =
  prop "meta.release.slacken"
    "halving (and zeroing) release times never raises the Section 3 lower bound, and the \
     heuristics stay sound on the slackened instances"
    [ "release"; "ls"; "shelf" ]
    (on_release (fun inst ->
         let half = Mutate.slacken_releases ~factor:(Q.of_ints 1 2) inst in
         let zero = Mutate.slacken_releases ~factor:Q.zero inst in
         let lb = LB.release inst and lb_h = LB.release half and lb_z = LB.release zero in
         let sound i =
           match Validate.check_release i (Spp_core.List_schedule.release i) with
           | [] -> (
             match Validate.check_release i (fst (Spp_core.Release_shelf.pack i)) with
             | [] -> (true, fun () -> "")
             | vs -> (false, fun () -> "shelf on slackened: " ^ pp_violations vs))
           | vs -> (false, fun () -> "LS on slackened: " ^ pp_violations vs)
         in
         all_pass
           [ (Q.compare lb_h lb <= 0,
              fun () -> Printf.sprintf "LB rose from %s to %s after halving releases" (qs lb) (qs lb_h));
             (Q.compare lb_z lb_h <= 0,
              fun () -> Printf.sprintf "LB rose from %s to %s after zeroing releases" (qs lb_h) (qs lb_z));
             sound half; sound zero ]))

(* ------------------------------------------------------------------ *)
(* Online simulation *)

let pp_sim_violations vs =
  let shown = List.filteri (fun i _ -> i < 3) vs in
  Printf.sprintf "%d violation(s): %s" (List.length vs)
    (String.concat "; " (List.map (Format.asprintf "%a" Spp_sim.Sim.pp_violation) shown))

(* Shared skeleton: run the simulator, check the segment log with the
   independent validator, compare the makespan against the Section 3
   lower bound exactly (competitive ratio >= 1 in rationals — AREA and
   max r+h hold even for migration schedules), and when the run never
   moved a task, cross-check through the offline placement oracle. *)
let sim_checks ?repack_threshold packer inst extra =
  let r = Spp_sim.Sim.run ?repack_threshold ~packer inst in
  match Spp_sim.Sim.check inst r with
  | _ :: _ as vs -> Fail (pp_sim_violations vs)
  | [] ->
    let lb = LB.release inst in
    let oracle =
      match Spp_sim.Sim.to_placement inst r with
      | None ->
        ( r.Spp_sim.Sim.moves > 0,
          fun () -> "no offline placement view even though no task was moved" )
      | Some p -> (
        match Validate.check_release inst p with
        | [] -> (true, fun () -> "")
        | vs -> (false, fun () -> "offline placement oracle: " ^ pp_violations vs))
    in
    all_pass
      ([ (Q.compare r.Spp_sim.Sim.makespan lb >= 0,
          fun () -> Printf.sprintf "online makespan %s below lower bound %s"
              (qs r.Spp_sim.Sim.makespan) (qs lb));
         oracle ]
      @ extra r)

let sound_sim_ff =
  prop "sound.sim.ff"
    "online first-fit run: segment log passes the independent sim validator, makespan at or \
     above the Section 3 lower bound (and the APTAS certified bound on small instances), and \
     the move-free run passes Validate.check_release as a placement"
    [ "release"; "sim" ]
    (on_release (fun inst ->
         sim_checks Spp_sim.Online.First_fit inst (fun r ->
             if I.Release.size inst > aptas_gate_n || inst.I.Release.k > aptas_gate_k then []
             else begin
               let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
               [ (Q.compare res.Spp_core.Aptas.lower_bound r.Spp_sim.Sim.makespan <= 0,
                  fun () -> Printf.sprintf "APTAS certified LB %s above online makespan %s"
                      (qs res.Spp_core.Aptas.lower_bound) (qs r.Spp_sim.Sim.makespan)) ]
             end)))

let sound_sim_buffered =
  prop "sound.sim.buffered"
    "online buffered-lookahead run is sound and never places anything before its release"
    [ "release"; "sim" ]
    (on_release (fun inst ->
         sim_checks (Spp_sim.Online.Buffered Spp_sim.Online.default_lookahead) inst (fun _ -> [])))

let sound_sim_repack =
  prop "sound.sim.repack"
    "with repacking at threshold 1/4: still sound across migrations, every repack strictly \
     reduces fragmentation, and the per-cell cost accounting adds up"
    [ "release"; "sim" ]
    (on_release (fun inst ->
         sim_checks ~repack_threshold:(Q.of_ints 1 4) Spp_sim.Online.First_fit inst (fun r ->
             let open Spp_sim.Sim in
             [ (List.for_all (fun e -> Q.compare e.frag_after e.frag_before < 0) r.repacks,
                fun () -> "a repack did not strictly reduce fragmentation");
               (r.cells_migrated = List.fold_left (fun a e -> a + e.cells) 0 r.repacks,
                fun () -> Printf.sprintf "cells_migrated %d /= sum of per-repack cells"
                    r.cells_migrated);
               (Q.equal r.migration_cost (Q.of_int r.cells_migrated),
                fun () -> Printf.sprintf "migration cost %s /= cells %d at unit cost"
                    (qs r.migration_cost) r.cells_migrated) ])))

let sim_stream =
  prop "sim.stream"
    "the arrival stream is a pure function of the stream seed: regenerating the trace and \
     re-deriving the arrival order from the replayed seed reproduce it bit for bit"
    [ "prec"; "release"; "sim" ]
    (fun parsed ->
      let seed = stream_seed_of parsed in
      let spec = Spp_sim.Arrivals.Poisson 1.5 in
      let t1 = Spp_sim.Arrivals.trace ~n:16 ~k:6 ~seed spec in
      let t2 = Spp_sim.Arrivals.trace ~n:16 ~k:6 ~seed spec in
      let s1, w1 = Spp_sim.Arrivals.of_instance t1 in
      let s2, w2 = Spp_sim.Arrivals.of_instance t2 in
      all_pass
        [ (Io.release_to_string t1 = Io.release_to_string t2,
           fun () -> Printf.sprintf "trace for seed %d not reproducible" seed);
          (s1 = s2 && w1 = w2,
           fun () -> Printf.sprintf "arrival stream for seed %d not reproducible" seed);
          (List.length s1 = 16, fun () -> "trace dropped tasks") ])

(* ------------------------------------------------------------------ *)
(* Engine / store round trip *)

let tmp_counter = ref 0

let with_temp_dir f =
  let rec fresh () =
    incr tmp_counter;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "spp-fuzz-%d-%d" (Unix.getpid ()) !tmp_counter)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> fresh ()
  in
  let dir = fresh () in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

let diff_engine =
  prop "diff.engine"
    "the portfolio engine returns the best member height, validated, and identically through \
     a disk-store round trip"
    [ "prec"; "dc"; "ls"; "engine" ]
    (on_prec (fun inst ->
         if I.Prec.size inst > engine_gate then Skip
         else begin
           let parsed = Io.Prec inst in
           let dc = Placement.height (fst (Spp_core.Dc.pack inst)) in
           let ls = Placement.height (Spp_core.List_schedule.prec inst) in
           let expected = Q.min dc ls in
           with_temp_dir (fun dir ->
               let e1 = Spp_engine.Engine.create ~store_dir:dir () in
               let r1 = Spp_engine.Engine.solve ~algos:[ "dc"; "ls" ] ~workers:1 e1 parsed in
               let e2 = Spp_engine.Engine.create ~store_dir:dir () in
               let r2 = Spp_engine.Engine.solve ~algos:[ "dc"; "ls" ] ~workers:1 e2 parsed in
               let valid label (r : Spp_engine.Engine.result) =
                 match Validate.check_prec inst r.Spp_engine.Engine.placement with
                 | [] -> (true, fun () -> "")
                 | vs -> (false, fun () -> label ^ ": " ^ pp_violations vs)
               in
               all_pass
                 [ (Q.equal r1.Spp_engine.Engine.height expected,
                    fun () -> Printf.sprintf "engine height %s /= best member height %s"
                        (qs r1.Spp_engine.Engine.height) (qs expected));
                   valid "engine result" r1;
                   (r2.Spp_engine.Engine.source = Spp_engine.Engine.Disk_cache,
                    fun () -> "second engine did not hit the disk store");
                   (Q.equal r2.Spp_engine.Engine.height r1.Spp_engine.Engine.height,
                    fun () -> Printf.sprintf "store round trip changed height %s -> %s"
                        (qs r1.Spp_engine.Engine.height) (qs r2.Spp_engine.Engine.height));
                   valid "store round trip" r2 ])
         end))

let sound_engine_degraded =
  prop "sound.engine.degraded"
    "a zero-budget solve returns an anytime answer that still validates, with \
     height = lower_bound + gap and gap >= 0"
    [ "prec"; "release"; "engine" ]
    (fun parsed ->
      let size =
        match parsed with
        | Io.Prec inst -> I.Prec.size inst
        | Io.Release inst -> I.Release.size inst
      in
      if size > engine_gate then Skip
      else begin
        let e = Spp_engine.Engine.create () in
        let r = Spp_engine.Engine.solve ~budget_ms:0.0 ~workers:1 e parsed in
        let valid =
          let vs =
            match parsed with
            | Io.Prec inst -> Validate.check_prec inst r.Spp_engine.Engine.placement
            | Io.Release inst -> Validate.check_release inst r.Spp_engine.Engine.placement
          in
          match vs with
          | [] -> (true, fun () -> "")
          | vs -> (false, fun () -> "degraded answer: " ^ pp_violations vs)
        in
        all_pass
          [ valid;
            (Q.compare r.Spp_engine.Engine.gap Q.zero >= 0,
             fun () -> Printf.sprintf "negative gap %s" (qs r.Spp_engine.Engine.gap));
            (Q.equal r.Spp_engine.Engine.height
               (Q.add r.Spp_engine.Engine.lower_bound r.Spp_engine.Engine.gap),
             fun () ->
               Printf.sprintf "height %s /= lower bound %s + gap %s"
                 (qs r.Spp_engine.Engine.height)
                 (qs r.Spp_engine.Engine.lower_bound)
                 (qs r.Spp_engine.Engine.gap)) ]
      end)

(* ------------------------------------------------------------------ *)
(* Planted bug (self test) *)

let buggy_pack (inst : I.Prec.t) =
  let p = Spp_core.List_schedule.prec inst in
  let h_min =
    List.fold_left (fun acc (r : Rect.t) -> Q.min acc r.Rect.h)
      (Rect.max_height inst.I.Prec.rects) inst.I.Prec.rects
  in
  let delta = Q.div h_min Q.two in
  Placement.of_items
    (List.map
       (fun (it : Placement.item) ->
         let y = it.Placement.pos.Placement.y in
         if Q.is_zero y then it
         else { it with Placement.pos = { it.Placement.pos with Placement.y = Q.sub y (Q.min delta y) } })
       (Placement.items p))

let planted_bug =
  prop "sound.planted.offbyone"
    "SELF TEST: a solver that lowers every stacked rectangle by half the minimum height \
     must be caught by Validate and shrunk to a minimal stacked pair"
    [ "prec"; "planted" ]
    (on_prec (fun inst -> prec_valid inst (buggy_pack inst)))

(* ------------------------------------------------------------------ *)
(* Registry *)

let all =
  [
    sound_dc; sound_ls_prec; sound_uniform_f; sound_uniform_pff; sound_uniform_wave;
    sound_ls_release; sound_shelf; sound_shelf_ff;
    guar_dc_thm23; guar_prec_lb; guar_uniform_f_thm26; guar_release_lb; guar_aptas;
    diff_exact_prec; diff_uniform_dp; diff_exact_release; sound_bb_parallel; num_diff;
    diff_engine; sound_engine_degraded;
    meta_relabel; meta_edge_drop; meta_release_slacken;
    sound_sim_ff; sound_sim_buffered; sound_sim_repack; sim_stream;
  ]

let select ?algos ~variant () =
  let by_variant =
    match variant with
    | `Both -> all
    | `Prec -> List.filter (fun p -> List.mem "prec" p.tags) all
    | `Release -> List.filter (fun p -> List.mem "release" p.tags) all
  in
  match algos with
  | None -> by_variant
  | Some names ->
    let known =
      List.sort_uniq compare
        (List.concat_map (fun p -> List.filter (fun t -> t <> "prec" && t <> "release") p.tags) all)
    in
    List.iter
      (fun n ->
        if not (List.mem n known) then
          invalid_arg
            (Printf.sprintf "unknown algo %S in --algos; known: %s" n (String.concat ", " known)))
      names;
    List.filter (fun p -> List.exists (fun n -> List.mem n p.tags) names) by_variant
