(** The property families, each mapped to the theorem or invariant it
    machine-checks (see DESIGN.md §Correctness harness for the full map):

    {b Soundness} ([sound.*]) — every algorithm's output passes the
    independent validators {!Spp_core.Validate.check_prec} /
    [check_release] (geometry, completeness, precedence edges, release
    floors).

    {b Guarantee certification} ([guar.*]) — the paper's proved bounds,
    evaluated exactly: DC within the Theorem 2.3 induction bound
    [log2(n+1)·F + 2·AREA]; algorithm F within the Theorem 2.6 accounting
    [2·AREA + F(S) + c] (Lemma 2.5 skips included); the APTAS's certified
    accounting of Theorem 3.5 ([height ≤ fractional + occurrences],
    [lower_bound ≤] every valid packing's height); every height at or
    above the Section 2/3 lower bounds; engine results identical through
    the disk-store round trip.

    {b Metamorphic / differential} ([meta.*], [diff.*]) — invariance under
    strictly monotone id relabeling; monotonicity of the bounds and of the
    exact optimum under DAG edge removal and release slackening; agreement
    of the independent exact solvers on small instances; heuristics
    sandwiched between the lower bounds and nothing below the exact
    optimum.

    {b Simulation} ([sound.sim.*], [sim.*]) — online runs through
    {!Spp_sim.Sim} pass the independent segment validator at every
    instant, never start before release, keep the exact competitive
    ratio at or above 1 against the Section 3 (and certified APTAS)
    lower bounds, repack only with strict fragmentation decrease and
    honest per-cell cost accounting, and arrival streams replay bit for
    bit from {!stream_seed_of}.

    Every property takes an {!Spp_core.Io.parsed} instance and returns
    [Skip] when its guard (variant, uniformity, size gate for the
    exponential solvers) does not hold. *)

type t = Spp_core.Io.parsed Runner.property

(** [stream_seed_of parsed] is the deterministic arrival-stream seed for
    a case: the CRC-32 of its canonical printed form. [spp fuzz] records
    it in failure reports so [--replay-seed] reproduces not just the
    instance but the exact arrival stream the sim properties derived
    from it. *)
val stream_seed_of : Spp_core.Io.parsed -> int

(** All shipped properties, in evaluation order. *)
val all : t list

(** [select ?algos ~variant ()] filters {!all}: keep properties matching
    the variant ([`Both] keeps everything) and, when [algos] is given,
    tagged with at least one of the names (unknown names raise).
    @raise Invalid_argument on an algo name no property is tagged with. *)
val select : ?algos:string list -> variant:Arb.variant -> unit -> t list

(** The planted-bug self test: a deliberately broken solver (every
    rectangle above the base is lowered by half the minimum height — the
    classic off-by-one in y) whose unsoundness the harness must detect and
    shrink to a minimal stacked pair. Never part of {!all}; used by
    [spp fuzz --self-test] and the tier-1 suite to prove the
    detect-shrink-replay pipeline works. *)
val planted_bug : t
